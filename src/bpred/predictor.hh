/**
 * @file
 * Branch direction predictor interface.
 *
 * Predictors are driven trace-style: predict(pc) followed by
 * update(pc, taken) for every predicted branch, in program order.
 * Because the harnesses never fetch down a wrong path, speculative
 * history update with repair and commit-time history update coincide;
 * predictors therefore keep their history registers internally and
 * update them with the actual outcome (see DESIGN.md).
 *
 * The predicate global update technique needs to push non-branch bits
 * into a predictor's global history; predictors that maintain a global
 * history implement injectHistoryBit().
 */

#ifndef PABP_BPRED_PREDICTOR_HH
#define PABP_BPRED_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Abstract direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * @name Statistics registry
     * Predictors with observable counters (e.g. gshare's aliasing
     * profiler) register them into @p group under @p prefix as
     * callback gauges; resetStats() zeroes those counters without
     * touching predictive state (tables, histories). The defaults
     * are for predictors with nothing to report.
     * @{
     */
    virtual void
    registerStats(StatGroup &group, const std::string &prefix)
    {
        (void)group;
        (void)prefix;
    }
    virtual void resetStats() {}
    /** @} */

    /** Predicted direction for the branch at @p pc. */
    virtual bool predict(std::uint32_t pc) = 0;

    /** Train with the resolved outcome. Must follow the predict()
     *  for the same dynamic branch, with no predictions between. */
    virtual void update(std::uint32_t pc, bool taken) = 0;

    /**
     * Fused predict + update for the hot replay loop: exactly
     * equivalent to predict(pc) followed by update(pc, taken),
     * returning the prediction. The default does just that (two
     * virtual dispatches); the predictors on the replay fast path
     * (gshare, combining, perceptron) provide a `final` override
     * whose internal calls are non-virtual, so a caller holding the
     * concrete type pays no virtual dispatch at all. Overrides MUST
     * preserve bit-identical behaviour with the unfused pair - the
     * fast-vs-reference equivalence tests pin this.
     */
    virtual bool
    predictAndUpdate(std::uint32_t pc, bool taken)
    {
        bool predicted = predict(pc);
        update(pc, taken);
        return predicted;
    }

    /**
     * Shift a non-branch bit (a predicate define outcome) into the
     * global history, if this predictor has one. The default is a
     * no-op so the PGU wrapper can be applied to any predictor.
     */
    virtual void injectHistoryBit(bool bit) { (void)bit; }

    /**
     * Shift @p n non-branch bits into the global history at once,
     * oldest in the most significant position - exactly equivalent to
     * n injectHistoryBit() calls walking @p bits MSB-to-LSB. Callers
     * must pass only the low n bits (high bits clear) and n <= 64.
     * The default loops per bit, so any override of
     * injectHistoryBit() is honoured; predictors whose history is a
     * plain shift register override this with a single shift, which
     * is what makes the replay schedule cache's word-at-a-time PGU
     * drain cheap.
     */
    virtual void
    injectHistoryBits(std::uint64_t bits, unsigned n)
    {
        for (unsigned j = n; j-- > 0;)
            injectHistoryBit(((bits >> j) & 1) != 0);
    }

    /** True when injectHistoryBit() actually does something. */
    virtual bool hasGlobalHistory() const { return false; }

    /**
     * @name History swap
     * The multi-context replayer (core/multictx.hh) shares one
     * predictor's TABLES across interleaved trace contexts while
     * optionally giving each context a private global history: around
     * every schedule slice it exports the outgoing context's history
     * words and imports the incoming context's. exportHistory()
     * APPENDS this predictor's history words to @p out;
     * importHistory() reads them back from @p words and returns how
     * many words it consumed (composite predictors delegate in the
     * same order both ways). A fresh context imports the words a
     * freshly-reset predictor exports. The defaults are for
     * predictors with no global history: nothing exported, nothing
     * consumed.
     * @{
     */
    virtual void
    exportHistory(std::vector<std::uint64_t> &out) const
    {
        (void)out;
    }
    virtual std::size_t
    importHistory(const std::uint64_t *words, std::size_t n)
    {
        (void)words;
        (void)n;
        return 0;
    }
    /** @} */

    /** Forget all state. */
    virtual void reset() = 0;

    /**
     * @name Checkpointing
     * Serialise/restore the predictor's dynamic state (counters,
     * histories, tags) - configuration is not stored; a checkpoint
     * only restores into an identically-configured predictor, which
     * loadState() verifies via table geometry. The default pair is
     * for stateless predictors. Transient predict()-to-update()
     * latches need no saving: checkpoints are only taken between
     * whole process() steps. See docs/ROBUSTNESS.md.
     * @{
     */
    virtual void saveState(StateSink &sink) const { (void)sink; }
    virtual Status
    loadState(StateSource &src)
    {
        (void)src;
        return Status();
    }
    /** @} */

    /** Human-readable name, e.g. "gshare-4K". */
    virtual std::string name() const = 0;

    /** Hardware budget in bits (counters + histories). */
    virtual std::size_t storageBits() const = 0;
};

using PredictorPtr = std::unique_ptr<BranchPredictor>;

} // namespace pabp

#endif // PABP_BPRED_PREDICTOR_HH
