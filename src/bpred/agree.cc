#include "bpred/agree.hh"

#include "util/logging.hh"

namespace pabp {

AgreePredictor::AgreePredictor(unsigned entries_log2, unsigned bias_log2)
    : agreeTable(std::size_t{1} << entries_log2,
                 SatCounter(2, 2)), // init weakly-agree
      biasTable(std::size_t{1} << bias_log2),
      entriesLog2(entries_log2), biasLog2(bias_log2)
{
    pabp_assert(entries_log2 >= 1 && entries_log2 <= 24);
}

std::size_t
AgreePredictor::index(std::uint32_t pc) const
{
    std::uint64_t hist = ghr & ((std::uint64_t{1} << entriesLog2) - 1);
    return (pc ^ hist) & (agreeTable.size() - 1);
}

AgreePredictor::Bias &
AgreePredictor::biasFor(std::uint32_t pc)
{
    return biasTable[pc & (biasTable.size() - 1)];
}

bool
AgreePredictor::predict(std::uint32_t pc)
{
    const Bias &bias = biasFor(pc);
    bool bias_dir = bias.valid ? bias.bias : true;
    bool agree = agreeTable[index(pc)].predictTaken();
    return agree == bias_dir;
}

void
AgreePredictor::update(std::uint32_t pc, bool taken)
{
    Bias &bias = biasFor(pc);
    if (!bias.valid) {
        // First-outcome bias setting, as in the original proposal.
        bias.valid = true;
        bias.bias = taken;
    }
    agreeTable[index(pc)].update(taken == bias.bias);
    ghr = (ghr << 1) | (taken ? 1 : 0);
}

void
AgreePredictor::injectHistoryBit(bool bit)
{
    ghr = (ghr << 1) | (bit ? 1 : 0);
}

void
AgreePredictor::reset()
{
    for (auto &c : agreeTable)
        c = SatCounter(2, 2);
    for (auto &b : biasTable)
        b = Bias{};
    ghr = 0;
}

std::string
AgreePredictor::name() const
{
    return "agree-" + std::to_string(agreeTable.size());
}

std::size_t
AgreePredictor::storageBits() const
{
    return agreeTable.size() * 2 + biasTable.size() * 2 + entriesLog2;
}


void
AgreePredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(agreeTable);
    sink.writeU64(biasTable.size());
    for (const Bias &b : biasTable) {
        sink.writeBool(b.valid);
        sink.writeBool(b.bias);
    }
    sink.writeU64(ghr);
}

Status
AgreePredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readCounters(agreeTable));
    std::uint64_t count = 0;
    PABP_TRY(src.readPod(count));
    if (count != biasTable.size())
        return Status(StatusCode::InvalidArgument,
                      "bias table size mismatch");
    for (Bias &b : biasTable) {
        PABP_TRY(src.readBool(b.valid));
        PABP_TRY(src.readBool(b.bias));
    }
    return src.readPod(ghr);
}

} // namespace pabp
