#include "bpred/confidence.hh"

#include "util/logging.hh"

namespace pabp {

ConfidenceEstimator::ConfidenceEstimator(unsigned entries_log2,
                                         unsigned counter_max,
                                         unsigned threshold)
    : table(std::size_t{1} << entries_log2, 0), counterMax(counter_max),
      confThreshold(threshold)
{
    pabp_assert(entries_log2 >= 1 && entries_log2 <= 20);
    pabp_assert(threshold <= counter_max);
    pabp_assert(counter_max <= 255);
}

bool
ConfidenceEstimator::highConfidence(std::uint32_t pc) const
{
    return table[index(pc)] >= confThreshold;
}

void
ConfidenceEstimator::update(std::uint32_t pc, bool correct)
{
    ++updateCount;
    std::uint8_t &counter = table[index(pc)];
    if (correct) {
        if (counter < counterMax)
            ++counter;
    } else {
        counter = 0;
        ++resetCount;
    }
}

void
ConfidenceEstimator::registerStats(StatGroup &group,
                                   const std::string &prefix)
{
    group.gauge(prefix + "updates", [this] { return updateCount; });
    group.gauge(prefix + "low_resets", [this] { return resetCount; });
}

void
ConfidenceEstimator::reset()
{
    std::fill(table.begin(), table.end(), 0);
}

std::size_t
ConfidenceEstimator::storageBits() const
{
    unsigned bits = 1;
    while ((1u << bits) - 1 < counterMax)
        ++bits;
    return table.size() * bits;
}


void
ConfidenceEstimator::saveState(StateSink &sink) const
{
    sink.writePodVector(table);
    sink.writeU64(updateCount);
    sink.writeU64(resetCount);
}

Status
ConfidenceEstimator::loadState(StateSource &src)
{
    PABP_TRY(src.readPodVector(table, table.size()));
    PABP_TRY(src.readPod(updateCount));
    return src.readPod(resetCount);
}

} // namespace pabp
