#include "bpred/factory.hh"

#include <algorithm>
#include <iterator>

#include "bpred/agree.hh"
#include "bpred/combining.hh"
#include "bpred/gshare.hh"
#include "bpred/local.hh"
#include "bpred/perceptron.hh"
#include "bpred/simple.hh"
#include "bpred/tage.hh"
#include "bpred/yags.hh"
#include "util/logging.hh"

namespace pabp {

namespace {

/**
 * Report a derived size whose clamp actually engaged. The size
 * derivations themselves (half tables, budget-matched rows) are
 * documented contract (factory.hh); what must not stay silent is the
 * *floor or cap* kicking in, where the predictor built is smaller
 * than the derivation promises - a sweep label saying "2^12" while
 * the predictor holds 2^1 rows is exactly the sort of thing that
 * corrupts a paper's size axis unnoticed.
 */
void
logClampedSize(const std::string &kind, const char *what,
               unsigned effective, int nominal)
{
    if (static_cast<int>(effective) == nominal)
        return;
    pabp_warn(kind + ": nominal " + what + " " +
              std::to_string(nominal) + " clamped to " +
              std::to_string(effective));
}

/**
 * One registry row. `sized` kinds get the shared entries_log2 range
 * check before their builder runs; the static predictors ignore the
 * size entirely and skip it.
 */
struct KindEntry
{
    const char *name;
    bool sized;
    PredictorPtr (*build)(unsigned entries_log2);
};

PredictorPtr
buildLocal(unsigned entries_log2)
{
    // Local history registers are capped at 10 bits (the classic
    // PAg sizing); wider tables still get wider BHT/PHTs.
    unsigned local_bits = std::min(10u, entries_log2);
    logClampedSize("local", "local history bits", local_bits,
                   static_cast<int>(entries_log2));
    return std::make_unique<LocalPredictor>(entries_log2, local_bits,
                                            entries_log2);
}

PredictorPtr
buildYags(unsigned entries_log2)
{
    // Split budget: choice PHT at full size, each direction cache at
    // half.
    unsigned cache = std::max(1u, entries_log2 - 1);
    logClampedSize("yags", "direction cache log2", cache,
                   static_cast<int>(entries_log2) - 1);
    return std::make_unique<YagsPredictor>(entries_log2, cache);
}

PredictorPtr
buildPerceptron(unsigned entries_log2)
{
    // Budget-match: rows sized so total bits track 2-bit tables.
    unsigned rows = entries_log2 > 7 ? entries_log2 - 7 : 1;
    logClampedSize("perceptron", "row table log2", rows,
                   static_cast<int>(entries_log2) - 7);
    return std::make_unique<PerceptronPredictor>(rows, 24);
}

PredictorPtr
buildComb(unsigned entries_log2)
{
    unsigned half = std::max(1u, entries_log2 - 1);
    logClampedSize("comb", "component table log2", half,
                   static_cast<int>(entries_log2) - 1);
    return std::make_unique<CombiningPredictor>(
        std::make_unique<BimodalPredictor>(half),
        std::make_unique<GSharePredictor>(half), half);
}

PredictorPtr
buildTage(unsigned entries_log2)
{
    // Budget split: bimodal base at the requested size, each tagged
    // table and the statistical corrector at a quarter.
    TageConfig tcfg;
    tcfg.baseLog2 = entries_log2;
    tcfg.tableLog2 = entries_log2 > 2 ? entries_log2 - 2 : 1;
    tcfg.scLog2 = tcfg.tableLog2;
    logClampedSize("tage", "tagged table log2", tcfg.tableLog2,
                   static_cast<int>(entries_log2) - 2);
    return std::make_unique<TagePredictor>(tcfg);
}

/**
 * The registry. Registration order is the allPredictorKinds() order,
 * which the fuzz seed derivation depends on - append new kinds, never
 * insert. kNumPredictorKinds (factory.hh) pins the count so a new
 * kind that forgets to bump it fails to compile here rather than
 * silently skipping the coverage matrix.
 */
constexpr KindEntry kKinds[] = {
    {"static-taken", false,
     [](unsigned) -> PredictorPtr {
         return std::make_unique<StaticPredictor>(true);
     }},
    {"static-nottaken", false,
     [](unsigned) -> PredictorPtr {
         return std::make_unique<StaticPredictor>(false);
     }},
    {"bimodal", true,
     [](unsigned n) -> PredictorPtr {
         return std::make_unique<BimodalPredictor>(n);
     }},
    {"gshare", true,
     [](unsigned n) -> PredictorPtr {
         return std::make_unique<GSharePredictor>(n);
     }},
    {"gag", true,
     [](unsigned n) -> PredictorPtr {
         return std::make_unique<GAgPredictor>(n);
     }},
    {"local", true, buildLocal},
    {"agree", true,
     [](unsigned n) -> PredictorPtr {
         return std::make_unique<AgreePredictor>(n, n);
     }},
    {"yags", true, buildYags},
    {"perceptron", true, buildPerceptron},
    {"comb", true, buildComb},
    {"tage", true, buildTage},
};

static_assert(std::size(kKinds) == kNumPredictorKinds,
              "update kNumPredictorKinds (factory.hh) and the "
              "engine-grid coverage matrix when registering a "
              "predictor kind");

} // anonymous namespace

const std::vector<std::string> &
allPredictorKinds()
{
    static const std::vector<std::string> kinds = [] {
        std::vector<std::string> v;
        v.reserve(std::size(kKinds));
        for (const KindEntry &e : kKinds)
            v.emplace_back(e.name);
        return v;
    }();
    return kinds;
}

Expected<PredictorPtr>
tryMakePredictor(const std::string &kind, unsigned entries_log2)
{
    for (const KindEntry &e : kKinds) {
        if (kind != e.name)
            continue;
        // Every sized kind builds a table of 1 << entries_log2 (or a
        // value derived from it). Validate ONCE, here, with a typed
        // error: 0 breaks the "at least one index bit" invariant
        // every predictor assumes, and >= 31 turns
        // `1 << entries_log2` into overflow/UB before any
        // constructor assert could fire. The ceiling matches the
        // predictor ctor asserts (<= 24).
        if (e.sized && (entries_log2 < 1 || entries_log2 > 24))
            return Status(
                StatusCode::InvalidArgument,
                "entries_log2 " + std::to_string(entries_log2) +
                    " out of range [1, 24] for predictor kind '" +
                    kind + "'");
        return e.build(entries_log2);
    }
    return Status(StatusCode::NotFound,
                  "unknown predictor kind: " + kind);
}

PredictorPtr
makePredictor(const std::string &kind, unsigned entries_log2)
{
    Expected<PredictorPtr> made = tryMakePredictor(kind, entries_log2);
    if (!made.ok())
        pabp_fatal(made.status().message());
    return std::move(made.value());
}

} // namespace pabp
