#include "bpred/factory.hh"

#include <algorithm>

#include "bpred/agree.hh"
#include "bpred/combining.hh"
#include "bpred/gshare.hh"
#include "bpred/local.hh"
#include "bpred/perceptron.hh"
#include "bpred/simple.hh"
#include "bpred/yags.hh"
#include "util/logging.hh"

namespace pabp {

Expected<PredictorPtr>
tryMakePredictor(const std::string &kind, unsigned entries_log2)
{
    if (kind == "static-taken")
        return std::make_unique<StaticPredictor>(true);
    if (kind == "static-nottaken")
        return std::make_unique<StaticPredictor>(false);
    if (kind == "bimodal")
        return std::make_unique<BimodalPredictor>(entries_log2);
    if (kind == "gshare")
        return std::make_unique<GSharePredictor>(entries_log2);
    if (kind == "gag")
        return std::make_unique<GAgPredictor>(entries_log2);
    if (kind == "local") {
        unsigned local_bits = std::min(10u, entries_log2);
        return std::make_unique<LocalPredictor>(entries_log2, local_bits,
                                                entries_log2);
    }
    if (kind == "yags") {
        unsigned cache = entries_log2 > 1 ? entries_log2 - 1 : 1;
        return std::make_unique<YagsPredictor>(entries_log2, cache);
    }
    if (kind == "agree")
        return std::make_unique<AgreePredictor>(entries_log2,
                                                entries_log2);
    if (kind == "perceptron") {
        // Budget-match: rows sized so total bits track 2-bit tables.
        unsigned rows = entries_log2 > 7 ? entries_log2 - 7 : 1;
        return std::make_unique<PerceptronPredictor>(rows, 24);
    }
    if (kind == "comb") {
        unsigned half = entries_log2 > 1 ? entries_log2 - 1 : 1;
        return std::make_unique<CombiningPredictor>(
            std::make_unique<BimodalPredictor>(half),
            std::make_unique<GSharePredictor>(half), half);
    }
    return Status(StatusCode::NotFound,
                  "unknown predictor kind: " + kind);
}

PredictorPtr
makePredictor(const std::string &kind, unsigned entries_log2)
{
    Expected<PredictorPtr> made = tryMakePredictor(kind, entries_log2);
    if (!made.ok())
        pabp_fatal(made.status().message());
    return std::move(made.value());
}

} // namespace pabp
