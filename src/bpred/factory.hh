/**
 * @file
 * Predictor construction from (kind, size) specs, shared by benches,
 * examples and tests.
 */

#ifndef PABP_BPRED_FACTORY_HH
#define PABP_BPRED_FACTORY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "bpred/predictor.hh"
#include "util/status.hh"

namespace pabp {

/**
 * Number of registered predictor kinds. The factory's dispatch table
 * static_asserts against this constant, and the engine-grid test
 * pins it too - so adding a predictor kind without updating both the
 * registry and the coverage matrix is a compile/test failure, never
 * a silent skip.
 */
inline constexpr std::size_t kNumPredictorKinds = 11;

/**
 * Every registered predictor kind, in registration order. The order
 * is part of the fuzz-campaign seed-derivation contract
 * (fuzz_runner.cc): reordering or inserting mid-list changes which
 * predictor a given campaign seed exercises, so new kinds append.
 */
const std::vector<std::string> &allPredictorKinds();

/**
 * Build a predictor.
 *
 * Recognised kinds:
 *  - "static-taken", "static-nottaken" (entries_log2 ignored)
 *  - "bimodal"  - 2^entries_log2 two-bit counters
 *  - "gshare"   - 2^entries_log2 counters, history = entries_log2
 *  - "gag"      - history/table of entries_log2 bits
 *  - "local"    - BHT/PHT of 2^entries_log2 each, 10-bit local history
 *  - "agree"    - gshare-indexed agree with bias bits
 *  - "yags"     - bimodal choice + tagged exception caches
 *  - "perceptron" - 24-bit-history perceptron, budget-matched rows
 *  - "comb"     - McFarling bimodal+gshare, each 2^(entries_log2-1)
 *  - "tage"     - TAGE + statistical corrector: 2^entries_log2
 *                 bimodal base, 4 tagged tables and a corrector
 *                 table of 2^(entries_log2-2) each
 *
 * An unknown kind is a NotFound Status (kinds routinely arrive from
 * config files and command lines). For every table-bearing kind,
 * entries_log2 outside [1, 24] is an InvalidArgument Status -
 * validated here, once, so `1 << entries_log2` never runs on a
 * garbage width. Derived sizes whose floor/cap engaged (e.g. local's
 * 10-bit history cap) are reported via pabp_warn.
 */
Expected<PredictorPtr> tryMakePredictor(const std::string &kind,
                                        unsigned entries_log2);

/** CLI shim over tryMakePredictor: fatal on an unknown kind. */
PredictorPtr makePredictor(const std::string &kind, unsigned entries_log2);

} // namespace pabp

#endif // PABP_BPRED_FACTORY_HH
