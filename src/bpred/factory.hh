/**
 * @file
 * Predictor construction from (kind, size) specs, shared by benches,
 * examples and tests.
 */

#ifndef PABP_BPRED_FACTORY_HH
#define PABP_BPRED_FACTORY_HH

#include <string>

#include "bpred/predictor.hh"
#include "util/status.hh"

namespace pabp {

/**
 * Build a predictor.
 *
 * Recognised kinds:
 *  - "static-taken", "static-nottaken" (entries_log2 ignored)
 *  - "bimodal"  - 2^entries_log2 two-bit counters
 *  - "gshare"   - 2^entries_log2 counters, history = entries_log2
 *  - "gag"      - history/table of entries_log2 bits
 *  - "local"    - BHT/PHT of 2^entries_log2 each, 10-bit local history
 *  - "agree"    - gshare-indexed agree with bias bits
 *  - "yags"     - bimodal choice + tagged exception caches
 *  - "perceptron" - 24-bit-history perceptron, budget-matched rows
 *  - "comb"     - McFarling bimodal+gshare, each 2^(entries_log2-1)
 *  - "tage"     - TAGE + statistical corrector: 2^entries_log2
 *                 bimodal base, 4 tagged tables and a corrector
 *                 table of 2^(entries_log2-2) each
 *
 * An unknown kind is a NotFound Status (kinds routinely arrive from
 * config files and command lines). For every table-bearing kind,
 * entries_log2 outside [1, 24] is an InvalidArgument Status -
 * validated here, once, so `1 << entries_log2` never runs on a
 * garbage width. Derived sizes whose floor/cap engaged (e.g. local's
 * 10-bit history cap) are reported via pabp_warn.
 */
Expected<PredictorPtr> tryMakePredictor(const std::string &kind,
                                        unsigned entries_log2);

/** CLI shim over tryMakePredictor: fatal on an unknown kind. */
PredictorPtr makePredictor(const std::string &kind, unsigned entries_log2);

} // namespace pabp

#endif // PABP_BPRED_FACTORY_HH
