#include "bpred/perceptron.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"

namespace pabp {

PerceptronPredictor::PerceptronPredictor(unsigned rows_log2,
                                         unsigned history_bits,
                                         unsigned weight_bits)
    : rowsLog2(rows_log2), histBits(history_bits),
      weightMax((1 << (weight_bits - 1)) - 1),
      // Optimal training threshold from the paper: 1.93h + 14.
      threshold(static_cast<int>(1.93 * history_bits + 14)),
      weights((std::size_t{1} << rows_log2) * (history_bits + 1), 0)
{
    pabp_assert(history_bits >= 1 && history_bits <= 63);
    pabp_assert(weight_bits >= 2 && weight_bits <= 16);
}

void
PerceptronPredictor::saturatingAdjust(std::int16_t &w, bool up)
{
    if (up) {
        if (w < weightMax)
            ++w;
    } else {
        if (w > -weightMax - 1)
            --w;
    }
}

bool
PerceptronPredictor::predict(std::uint32_t pc)
{
    lastRow = pc & ((std::size_t{1} << rowsLog2) - 1);
    lastHistory = ghr;
    // The dot product is the predictor's hot loop (histBits signed
    // adds per lookup); simd:: dispatches to an AVX2 kernel that is
    // byte-identical to the scalar sum (util/simd.hh).
    lastOutput = simd::perceptronDot(row(lastRow), lastHistory,
                                     histBits);
    return lastOutput >= 0;
}

void
PerceptronPredictor::update(std::uint32_t pc, bool taken)
{
    (void)pc; // trained at the row/history latched by predict()
    bool predicted = lastOutput >= 0;
    if (predicted != taken || std::abs(lastOutput) <= threshold) {
        simd::perceptronTrain(
            row(lastRow), lastHistory, histBits, taken,
            static_cast<std::int16_t>(weightMax),
            static_cast<std::int16_t>(-weightMax - 1));
    }
    ghr = (ghr << 1) | (taken ? 1 : 0);
}

bool
PerceptronPredictor::predictAndUpdate(std::uint32_t pc, bool taken)
{
    // Qualified calls: statically bound, bit-identical to the unfused
    // predict-then-update pair.
    bool predicted = PerceptronPredictor::predict(pc);
    PerceptronPredictor::update(pc, taken);
    return predicted;
}


void
PerceptronPredictor::reset()
{
    std::fill(weights.begin(), weights.end(), 0);
    ghr = 0;
    lastOutput = 0;
    lastHistory = 0;
    lastRow = 0;
}

std::string
PerceptronPredictor::name() const
{
    return "perceptron-" +
        std::to_string(std::size_t{1} << rowsLog2) + "x" +
        std::to_string(histBits) + "h";
}

std::size_t
PerceptronPredictor::storageBits() const
{
    // 16-bit storage is an implementation detail; architected cost is
    // weight_bits per weight. weightMax encodes the width.
    unsigned weight_bits = 1;
    while ((1 << (weight_bits - 1)) - 1 < weightMax)
        ++weight_bits;
    return weights.size() * weight_bits + histBits;
}


void
PerceptronPredictor::saveState(StateSink &sink) const
{
    sink.writePodVector(weights);
    sink.writeU64(ghr);
}

Status
PerceptronPredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readPodVector(weights, weights.size()));
    return src.readPod(ghr);
}

} // namespace pabp
