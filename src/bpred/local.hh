/**
 * @file
 * Two-level local-history predictor (PAs): a PC-indexed table of local
 * branch histories selects a counter in a pattern table.
 */

#ifndef PABP_BPRED_LOCAL_HH
#define PABP_BPRED_LOCAL_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/** PAs-style local two-level predictor. */
class LocalPredictor : public BranchPredictor
{
  public:
    /**
     * @param bht_log2 log2 of the branch history table size.
     * @param local_bits Per-branch history length.
     * @param pht_log2 log2 of the pattern table size; the index is
     *        the local history concatenated with low PC bits.
     */
    LocalPredictor(unsigned bht_log2, unsigned local_bits,
                   unsigned pht_log2, unsigned counter_bits = 2);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

  private:
    std::vector<std::uint32_t> bht;
    std::vector<SatCounter> pht;
    unsigned bhtLog2;
    unsigned localBits;
    unsigned phtLog2;
    unsigned counterBits;

    std::size_t phtIndex(std::uint32_t pc) const;
};

} // namespace pabp

#endif // PABP_BPRED_LOCAL_HH
