/**
 * @file
 * Agree predictor (Sprangle et al., ISCA 1997): pattern-table
 * counters predict whether the branch will AGREE with a per-branch
 * bias bit rather than its absolute direction, converting negative
 * interference between differently-biased branches into positive
 * interference. Relevant here because predicated code concentrates
 * strongly-biased region-exit branches - agree's best case.
 */

#ifndef PABP_BPRED_AGREE_HH
#define PABP_BPRED_AGREE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/** gshare-indexed agree predictor with first-outcome bias bits. */
class AgreePredictor : public BranchPredictor
{
  public:
    /**
     * @param entries_log2 log2 of the agree counter table.
     * @param bias_log2 log2 of the per-branch bias-bit table.
     */
    AgreePredictor(unsigned entries_log2, unsigned bias_log2);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    void injectHistoryBit(bool bit) override;
    bool hasGlobalHistory() const override { return true; }
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

  private:
    std::vector<SatCounter> agreeTable;
    struct Bias
    {
        bool valid = false;
        bool bias = false;
    };
    std::vector<Bias> biasTable;
    unsigned entriesLog2;
    unsigned biasLog2;
    std::uint64_t ghr = 0;

    std::size_t index(std::uint32_t pc) const;
    Bias &biasFor(std::uint32_t pc);
};

} // namespace pabp

#endif // PABP_BPRED_AGREE_HH
