/**
 * @file
 * Global-history predictors: gshare and GAg. Both expose their global
 * history register for predicate-bit injection (the PGU technique).
 */

#ifndef PABP_BPRED_GSHARE_HH
#define PABP_BPRED_GSHARE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/**
 * gshare: the pattern table is indexed by the branch PC xor-folded
 * with the global history register.
 */
class GSharePredictor : public BranchPredictor
{
  public:
    /**
     * @param entries_log2 log2 of the pattern table size.
     * @param history_bits History length; defaults to entries_log2
     *        (the classic full-index gshare) when 0.
     */
    explicit GSharePredictor(unsigned entries_log2,
                             unsigned history_bits = 0,
                             unsigned counter_bits = 2);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    /** Fused fast-path call; `final` so a caller holding a
     *  GSharePredictor& dispatches statically (no vtable). */
    bool predictAndUpdate(std::uint32_t pc, bool taken) final;
    /** In the header so the replay loop's devirtualised PGU drain
     *  inlines it - one register shift per bit, with the history
     *  staying in a register across a run of drained bits. */
    void
    injectHistoryBit(bool bit) override
    {
        ghr = (ghr << 1) | (bit ? 1 : 0);
    }
    /** Whole-word equivalent of n single-bit injects (contract in
     *  BranchPredictor::injectHistoryBits): one shift-or. */
    void
    injectHistoryBits(std::uint64_t bits, unsigned n) override
    {
        ghr = n >= 64 ? bits : (ghr << n) | bits;
    }
    bool hasGlobalHistory() const override { return true; }
    void
    exportHistory(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(ghr);
    }
    std::size_t
    importHistory(const std::uint64_t *words, std::size_t n) override
    {
        if (n >= 1)
            ghr = words[0];
        return 1;
    }
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

    std::uint64_t history() const { return ghr; }
    unsigned historyBits() const { return histBits; }

    /**
     * @name Aliasing profiler
     * When enabled, every lookup records whether the indexed entry
     * was last touched by a *different* branch PC - the destructive
     * interference that false-path branches inflict and the squash
     * filter removes (bench E16). Profiling state is not part of the
     * hardware budget.
     * @{
     */
    void enableConflictProfiling();
    std::uint64_t lookupCount() const { return lookups; }
    std::uint64_t conflictCount() const { return conflicts; }
    /** @} */

    void registerStats(StatGroup &group,
                       const std::string &prefix) override;
    void resetStats() override { lookups = 0; conflicts = 0; }

  private:
    std::vector<SatCounter> table;
    unsigned entriesLog2;
    unsigned histBits;
    unsigned counterBits;
    std::uint64_t ghr = 0;

    bool profiling = false;
    std::vector<std::uint32_t> lastPc;
    std::vector<bool> lastPcValid;
    std::uint64_t lookups = 0;
    std::uint64_t conflicts = 0;

    std::size_t index(std::uint32_t pc) const;
};

/**
 * GAg: the pattern table is indexed purely by global history, no PC.
 */
class GAgPredictor : public BranchPredictor
{
  public:
    explicit GAgPredictor(unsigned history_bits, unsigned counter_bits = 2);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    void injectHistoryBit(bool bit) override;
    void
    injectHistoryBits(std::uint64_t bits, unsigned n) override
    {
        ghr = n >= 64 ? bits : (ghr << n) | bits;
    }
    bool hasGlobalHistory() const override { return true; }
    void
    exportHistory(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(ghr);
    }
    std::size_t
    importHistory(const std::uint64_t *words, std::size_t n) override
    {
        if (n >= 1)
            ghr = words[0];
        return 1;
    }
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

  private:
    std::vector<SatCounter> table;
    unsigned histBits;
    unsigned counterBits;
    std::uint64_t ghr = 0;
};

} // namespace pabp

#endif // PABP_BPRED_GSHARE_HH
