#include "bpred/local.hh"

#include "util/logging.hh"

namespace pabp {

LocalPredictor::LocalPredictor(unsigned bht_log2, unsigned local_bits,
                               unsigned pht_log2, unsigned counter_bits)
    : bht(std::size_t{1} << bht_log2, 0),
      pht(std::size_t{1} << pht_log2, SatCounter(counter_bits)),
      bhtLog2(bht_log2), localBits(local_bits), phtLog2(pht_log2),
      counterBits(counter_bits)
{
    pabp_assert(local_bits >= 1 && local_bits <= 24);
    pabp_assert(local_bits <= pht_log2);
}

std::size_t
LocalPredictor::phtIndex(std::uint32_t pc) const
{
    std::uint32_t hist = bht[pc & (bht.size() - 1)];
    std::size_t idx = hist | (static_cast<std::size_t>(pc) << localBits);
    return idx & (pht.size() - 1);
}

bool
LocalPredictor::predict(std::uint32_t pc)
{
    return pht[phtIndex(pc)].predictTaken();
}

void
LocalPredictor::update(std::uint32_t pc, bool taken)
{
    pht[phtIndex(pc)].update(taken);
    std::uint32_t &hist = bht[pc & (bht.size() - 1)];
    hist = ((hist << 1) | (taken ? 1 : 0)) &
        ((std::uint32_t{1} << localBits) - 1);
}

void
LocalPredictor::reset()
{
    for (auto &h : bht)
        h = 0;
    for (auto &c : pht)
        c = SatCounter(counterBits);
}

std::string
LocalPredictor::name() const
{
    return "local-" + std::to_string(bht.size()) + "x" +
        std::to_string(localBits) + "h";
}

std::size_t
LocalPredictor::storageBits() const
{
    return bht.size() * localBits + pht.size() * counterBits;
}


void
LocalPredictor::saveState(StateSink &sink) const
{
    sink.writePodVector(bht);
    sink.writeCounters(pht);
}

Status
LocalPredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readPodVector(bht, bht.size()));
    return src.readCounters(pht);
}

} // namespace pabp
