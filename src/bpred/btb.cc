#include "bpred/btb.hh"

#include "util/logging.hh"

namespace pabp {

Btb::Btb(unsigned sets_log2, unsigned ways)
    : entries((std::size_t{1} << sets_log2) * ways), setsLog2(sets_log2),
      numWays(ways)
{
    pabp_assert(ways >= 1);
}

Btb::Entry *
Btb::setBase(std::uint32_t pc)
{
    std::size_t set = pc & ((std::size_t{1} << setsLog2) - 1);
    return &entries[set * numWays];
}

std::optional<std::uint32_t>
Btb::lookup(std::uint32_t pc)
{
    Entry *set = setBase(pc);
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            set[w].lastUse = ++useClock;
            ++hitCount;
            return set[w].target;
        }
    }
    ++missCount;
    return std::nullopt;
}

void
Btb::update(std::uint32_t pc, std::uint32_t target)
{
    Entry *set = setBase(pc);
    Entry *victim = &set[0];
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            victim = &set[w];
            break;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock;
}

void
Btb::reset()
{
    for (auto &e : entries)
        e = Entry{};
    useClock = 0;
    hitCount = 0;
    missCount = 0;
}

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack(depth, 0)
{
    pabp_assert(depth >= 1);
}

void
ReturnAddressStack::push(std::uint32_t return_pc)
{
    top = (top + 1) % stack.size();
    stack[top] = return_pc;
    if (count < stack.size())
        ++count;
}

std::optional<std::uint32_t>
ReturnAddressStack::pop()
{
    if (count == 0)
        return std::nullopt;
    std::uint32_t value = stack[top];
    top = (top + stack.size() - 1) % stack.size();
    --count;
    return value;
}

void
ReturnAddressStack::reset()
{
    top = 0;
    count = 0;
}

} // namespace pabp
