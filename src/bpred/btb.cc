#include "bpred/btb.hh"

#include "util/logging.hh"

namespace pabp {

Btb::Btb(unsigned sets_log2, unsigned ways)
    : entries((std::size_t{1} << sets_log2) * ways), setsLog2(sets_log2),
      numWays(ways)
{
    pabp_assert(ways >= 1);
}

Btb::Entry *
Btb::setBase(std::uint32_t pc)
{
    std::size_t set = pc & ((std::size_t{1} << setsLog2) - 1);
    return &entries[set * numWays];
}

std::optional<std::uint32_t>
Btb::lookup(std::uint32_t pc)
{
    Entry *set = setBase(pc);
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            set[w].lastUse = ++useClock;
            ++hitCount;
            return set[w].target;
        }
    }
    ++missCount;
    return std::nullopt;
}

void
Btb::update(std::uint32_t pc, std::uint32_t target)
{
    Entry *set = setBase(pc);
    Entry *victim = &set[0];
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            victim = &set[w];
            break;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock;
}

void
Btb::reset()
{
    for (auto &e : entries)
        e = Entry{};
    useClock = 0;
    hitCount = 0;
    missCount = 0;
}

void
Btb::registerStats(StatGroup &group, const std::string &prefix)
{
    group.gauge(prefix + "hits", [this] { return hitCount; });
    group.gauge(prefix + "misses", [this] { return missCount; });
    group.onReset([this] { resetStats(); });
}

void
Btb::saveState(StateSink &sink) const
{
    sink.writeU32(setsLog2);
    sink.writeU32(numWays);
    sink.writeU64(entries.size());
    for (const Entry &e : entries) {
        sink.writeBool(e.valid);
        sink.writeU32(e.tag);
        sink.writeU32(e.target);
        sink.writeU64(e.lastUse);
    }
    sink.writeU64(useClock);
    sink.writeU64(hitCount);
    sink.writeU64(missCount);
}

Status
Btb::loadState(StateSource &src)
{
    std::uint32_t storedSets = 0, storedWays = 0;
    PABP_TRY(src.readPod(storedSets));
    PABP_TRY(src.readPod(storedWays));
    if (storedSets != setsLog2 || storedWays != numWays)
        return Status(StatusCode::InvalidArgument,
                      "btb geometry " + std::to_string(storedSets) + "x" +
                          std::to_string(storedWays) +
                          " != configured " + std::to_string(setsLog2) +
                          "x" + std::to_string(numWays));
    std::uint64_t n = 0;
    PABP_TRY(src.readPod(n));
    if (n != entries.size())
        return Status(StatusCode::InvalidArgument,
                      "btb entry count " + std::to_string(n) +
                          " != configured " +
                          std::to_string(entries.size()));
    for (Entry &e : entries) {
        PABP_TRY(src.readBool(e.valid));
        PABP_TRY(src.readPod(e.tag));
        PABP_TRY(src.readPod(e.target));
        PABP_TRY(src.readPod(e.lastUse));
    }
    PABP_TRY(src.readPod(useClock));
    PABP_TRY(src.readPod(hitCount));
    PABP_TRY(src.readPod(missCount));
    return Status();
}

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack(depth, 0)
{
    pabp_assert(depth >= 1);
}

void
ReturnAddressStack::push(std::uint32_t return_pc)
{
    if (count == stack.size())
        ++overflowCount;
    top = (top + 1) % stack.size();
    stack[top] = return_pc;
    if (count < stack.size())
        ++count;
    ++pushCount;
}

std::optional<std::uint32_t>
ReturnAddressStack::pop()
{
    if (count == 0) {
        ++underflowCount;
        return std::nullopt;
    }
    std::uint32_t value = stack[top];
    top = (top + stack.size() - 1) % stack.size();
    --count;
    ++popCount;
    return value;
}

void
ReturnAddressStack::reset()
{
    top = 0;
    count = 0;
    pushCount = 0;
    popCount = 0;
    overflowCount = 0;
    underflowCount = 0;
}

void
ReturnAddressStack::registerStats(StatGroup &group,
                                  const std::string &prefix)
{
    group.gauge(prefix + "pushes", [this] { return pushCount; });
    group.gauge(prefix + "pops", [this] { return popCount; });
    group.gauge(prefix + "overflows", [this] { return overflowCount; });
    group.gauge(prefix + "underflows", [this] { return underflowCount; });
    group.onReset([this] { resetStats(); });
}

void
ReturnAddressStack::saveState(StateSink &sink) const
{
    sink.writeU32(static_cast<std::uint32_t>(stack.size()));
    sink.writePodVector(stack);
    sink.writeU32(top);
    sink.writeU32(count);
    sink.writeU64(pushCount);
    sink.writeU64(popCount);
    sink.writeU64(overflowCount);
    sink.writeU64(underflowCount);
}

Status
ReturnAddressStack::loadState(StateSource &src)
{
    std::uint32_t depth = 0;
    PABP_TRY(src.readPod(depth));
    if (depth != stack.size())
        return Status(StatusCode::InvalidArgument,
                      "ras depth " + std::to_string(depth) +
                          " != configured " +
                          std::to_string(stack.size()));
    PABP_TRY(src.readPodVector(stack, stack.size()));
    PABP_TRY(src.readPod(top));
    PABP_TRY(src.readPod(count));
    if (top >= stack.size() || count > stack.size())
        return Status(StatusCode::Corrupt,
                      "ras cursor out of range");
    PABP_TRY(src.readPod(pushCount));
    PABP_TRY(src.readPod(popCount));
    PABP_TRY(src.readPod(overflowCount));
    PABP_TRY(src.readPod(underflowCount));
    return Status();
}

} // namespace pabp
