#include "bpred/tage.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pabp {

namespace {

/** Smallest power of two that can hold @p n + 1 history bits. */
std::size_t
historyBufferSize(unsigned n)
{
    std::size_t size = 1;
    while (size < static_cast<std::size_t>(n) + 1)
        size <<= 1;
    return size;
}

} // anonymous namespace

TagePredictor::TagePredictor(const TageConfig &config) : cfg(config)
{
    pabp_assert(cfg.baseLog2 >= 1 && cfg.baseLog2 <= 24);
    pabp_assert(cfg.tableLog2 >= 1 && cfg.tableLog2 <= 24);
    pabp_assert(cfg.numTables >= 1 && cfg.numTables <= 16);
    pabp_assert(cfg.tagBits >= 2 && cfg.tagBits <= 15);
    pabp_assert(cfg.minHistory >= 1);
    pabp_assert(cfg.maxHistory >= cfg.minHistory &&
                cfg.maxHistory <= 512);
    pabp_assert(cfg.counterBits >= 2 && cfg.counterBits <= 8);
    pabp_assert(cfg.usefulBits >= 1 && cfg.usefulBits <= 8);
    pabp_assert(cfg.tickPeriod >= 1);
    pabp_assert(cfg.scLog2 >= 1 && cfg.scLog2 <= 24);
    pabp_assert(cfg.scCounterBits >= 2 && cfg.scCounterBits <= 8);

    // Geometric history series: minHistory for table 0 growing to
    // maxHistory for the last table, strictly increasing.
    histLengths.resize(cfg.numTables);
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        double frac = cfg.numTables > 1
            ? static_cast<double>(t) / (cfg.numTables - 1)
            : 1.0;
        double len = cfg.minHistory *
            std::pow(static_cast<double>(cfg.maxHistory) /
                         cfg.minHistory,
                     frac);
        unsigned rounded =
            static_cast<unsigned>(std::lround(len));
        if (t > 0 && rounded <= histLengths[t - 1])
            rounded = histLengths[t - 1] + 1;
        histLengths[t] = rounded;
    }
    pabp_assert(histLengths.back() <= 512);

    base.assign(std::size_t{1} << cfg.baseLog2, SatCounter(2));
    tables.assign(cfg.numTables,
                  std::vector<TaggedEntry>(std::size_t{1}
                                           << cfg.tableLog2));
    for (auto &table : tables)
        for (TaggedEntry &e : table) {
            e.ctr = SatCounter(cfg.counterBits);
            e.u = SatCounter(cfg.usefulBits, 0);
        }
    scTable.assign(std::size_t{1} << cfg.scLog2,
                   SatCounter(cfg.scCounterBits));

    hist.assign(historyBufferSize(histLengths.back()), 0);
    foldedIdx.resize(cfg.numTables);
    foldedTag0.resize(cfg.numTables);
    foldedTag1.resize(cfg.numTables);
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldedIdx[t].init(histLengths[t], cfg.tableLog2);
        foldedTag0[t].init(histLengths[t], cfg.tagBits);
        foldedTag1[t].init(histLengths[t], cfg.tagBits - 1);
    }

    idxLatch.assign(cfg.numTables, 0);
    tagLatch.assign(cfg.numTables, 0);
}

void
TagePredictor::shiftHistory(bool bit)
{
    const std::size_t mask = hist.size() - 1;
    histPtr = (histPtr + hist.size() - 1) & mask;
    hist[histPtr] = bit ? 1 : 0;
    const unsigned newBit = bit ? 1 : 0;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        const unsigned oldBit =
            hist[(histPtr + histLengths[t]) & mask];
        foldedIdx[t].shift(newBit, oldBit);
        foldedTag0[t].shift(newBit, oldBit);
        foldedTag1[t].shift(newBit, oldBit);
    }
}

std::uint32_t
TagePredictor::lfsrNext()
{
    const std::uint32_t bit = lfsr & 1;
    lfsr >>= 1;
    if (bit)
        lfsr ^= 0x80200003u;
    return lfsr;
}

std::size_t
TagePredictor::tableIndex(std::uint32_t pc, unsigned t) const
{
    const std::size_t mask =
        (std::size_t{1} << cfg.tableLog2) - 1;
    return (pc ^ (pc >> (t + 1)) ^ foldedIdx[t].comp) & mask;
}

std::uint16_t
TagePredictor::tableTag(std::uint32_t pc, unsigned t) const
{
    const std::uint32_t mask =
        (std::uint32_t{1} << cfg.tagBits) - 1;
    return static_cast<std::uint16_t>(
        (pc ^ foldedTag0[t].comp ^ (foldedTag1[t].comp << 1)) &
        mask);
}

std::size_t
TagePredictor::scIndex(std::uint32_t pc, bool tagePred) const
{
    std::uint64_t h =
        (static_cast<std::uint64_t>(pc) << 1) | (tagePred ? 1 : 0);
    h ^= h >> cfg.scLog2;
    return h & (scTable.size() - 1);
}

void
TagePredictor::lookup(std::uint32_t pc)
{
    providerLatch = -1;
    altLatch = -1;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        idxLatch[t] = tableIndex(pc, t);
        tagLatch[t] = tableTag(pc, t);
    }
    for (int t = static_cast<int>(cfg.numTables) - 1; t >= 0; --t) {
        if (tables[t][idxLatch[t]].tag != tagLatch[t])
            continue;
        if (providerLatch < 0) {
            providerLatch = t;
        } else {
            altLatch = t;
            break;
        }
    }

    const bool basePred =
        base[pc & (base.size() - 1)].predictTaken();
    if (providerLatch < 0) {
        providerPredLatch = basePred;
        altPredLatch = basePred;
        providerWeakNew = false;
        tagePredLatch = basePred;
    } else {
        const TaggedEntry &provider =
            tables[providerLatch][idxLatch[providerLatch]];
        providerPredLatch = provider.ctr.predictTaken();
        altPredLatch = altLatch >= 0
            ? tables[altLatch][idxLatch[altLatch]]
                  .ctr.predictTaken()
            : basePred;
        // "Newly allocated": the prediction counter is still weak
        // and the entry has never proven useful; for those, a
        // global useAltOnNa counter learns whether the alternate
        // prediction is the better bet (Seznec's use_alt_on_na).
        const std::uint8_t mid =
            static_cast<std::uint8_t>(1u << (cfg.counterBits - 1));
        const std::uint8_t raw = provider.ctr.raw();
        providerWeakNew = provider.u.raw() == 0 &&
            (raw == mid || raw == mid - 1);
        tagePredLatch = providerWeakNew && useAltOnNa.predictTaken()
            ? altPredLatch
            : providerPredLatch;
    }

    // Statistical corrector: a saturated counter for this
    // (pc, tage prediction) pair overrides TAGE - the branch is
    // statistically biased in a way the tagged tables keep missing.
    scIdxLatch = scIndex(pc, tagePredLatch);
    const SatCounter &sc = scTable[scIdxLatch];
    if (sc.isSaturated()) {
        finalPredLatch = sc.predictTaken();
        scOverrideLatch = finalPredLatch != tagePredLatch;
    } else {
        finalPredLatch = tagePredLatch;
        scOverrideLatch = false;
    }
}

bool
TagePredictor::predict(std::uint32_t pc)
{
    lookup(pc);
    if (providerLatch >= 0)
        ++providerHits;
    if (tagePredLatch != providerPredLatch)
        ++altOverrides;
    if (scOverrideLatch)
        ++scOverrides;
    return finalPredLatch;
}

void
TagePredictor::update(std::uint32_t pc, bool taken)
{
    if (scOverrideLatch && finalPredLatch == taken)
        ++scOverrideCorrect;
    scTable[scIdxLatch].update(taken);

    if (providerLatch >= 0) {
        TaggedEntry &provider =
            tables[providerLatch][idxLatch[providerLatch]];
        if (providerWeakNew && providerPredLatch != altPredLatch)
            useAltOnNa.update(altPredLatch == taken);
        if (providerPredLatch != altPredLatch)
            provider.u.update(providerPredLatch == taken);
        provider.ctr.update(taken);
    } else {
        base[pc & (base.size() - 1)].update(taken);
    }

    // Allocate a longer-history entry when TAGE itself (not the
    // corrector) mispredicted and a longer table exists. The LFSR
    // randomises the starting table so one hot branch cannot
    // monopolise the first free slot; failure to find a u == 0
    // entry ages every candidate instead.
    if (tagePredLatch != taken &&
        providerLatch < static_cast<int>(cfg.numTables) - 1) {
        unsigned start = static_cast<unsigned>(providerLatch + 1);
        if (cfg.numTables - start > 1 && (lfsrNext() & 1))
            ++start;
        const std::uint8_t mid =
            static_cast<std::uint8_t>(1u << (cfg.counterBits - 1));
        bool allocated = false;
        for (unsigned t = start; t < cfg.numTables; ++t) {
            TaggedEntry &e = tables[t][idxLatch[t]];
            if (e.u.raw() != 0)
                continue;
            e.tag = tagLatch[t];
            e.ctr = SatCounter(cfg.counterBits,
                               taken ? mid : mid - 1);
            e.u = SatCounter(cfg.usefulBits, 0);
            ++allocations;
            allocated = true;
            break;
        }
        if (!allocated) {
            ++allocFailures;
            for (unsigned t = start; t < cfg.numTables; ++t)
                tables[t][idxLatch[t]].u.decrement();
        }
    }

    // Periodic usefulness decay: alternately clear the MSB and the
    // LSB of every u counter so stale entries become reclaimable.
    if (++tick >= cfg.tickPeriod) {
        tick = 0;
        ++uResets;
        const std::uint8_t clear = tickFlip
            ? 1
            : static_cast<std::uint8_t>(1u << (cfg.usefulBits - 1));
        for (auto &table : tables)
            for (TaggedEntry &e : table)
                e.u.setRaw(e.u.raw() & ~clear);
        tickFlip = !tickFlip;
    }

    shiftHistory(taken);
}

bool
TagePredictor::predictAndUpdate(std::uint32_t pc, bool taken)
{
    // Qualified calls: statically bound, and the unfused pair by
    // construction (the gshare pattern; equivalence tests pin it).
    bool predicted = TagePredictor::predict(pc);
    TagePredictor::update(pc, taken);
    return predicted;
}

void
TagePredictor::registerStats(StatGroup &group,
                             const std::string &prefix)
{
    group.gauge(prefix + "provider_hits",
                [this] { return providerHits; });
    group.gauge(prefix + "alt_overrides",
                [this] { return altOverrides; });
    group.gauge(prefix + "allocations",
                [this] { return allocations; });
    group.gauge(prefix + "alloc_failures",
                [this] { return allocFailures; });
    group.gauge(prefix + "u_resets", [this] { return uResets; });
    group.gauge(prefix + "sc_overrides",
                [this] { return scOverrides; });
    group.gauge(prefix + "sc_override_correct",
                [this] { return scOverrideCorrect; });
}

void
TagePredictor::reset()
{
    for (auto &c : base)
        c = SatCounter(2);
    for (auto &table : tables)
        for (TaggedEntry &e : table) {
            e.tag = 0;
            e.ctr = SatCounter(cfg.counterBits);
            e.u = SatCounter(cfg.usefulBits, 0);
        }
    for (auto &c : scTable)
        c = SatCounter(cfg.scCounterBits);
    std::fill(hist.begin(), hist.end(), 0);
    histPtr = 0;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldedIdx[t].comp = 0;
        foldedTag0[t].comp = 0;
        foldedTag1[t].comp = 0;
    }
    useAltOnNa = SatCounter(4, 7);
    lfsr = 0x2545f4u;
    tick = 0;
    tickFlip = false;
}

std::string
TagePredictor::name() const
{
    return "tage-" + std::to_string(cfg.numTables) + "x" +
        std::to_string(std::size_t{1} << cfg.tableLog2) + "t-" +
        std::to_string(base.size()) + "b-" +
        std::to_string(scTable.size()) + "sc-" +
        std::to_string(histLengths.back()) + "h";
}

std::size_t
TagePredictor::storageBits() const
{
    const std::size_t taggedEntryBits =
        cfg.counterBits + cfg.usefulBits + cfg.tagBits;
    const std::size_t folded =
        cfg.numTables * (cfg.tableLog2 + 2 * cfg.tagBits - 1);
    return base.size() * 2 +
        cfg.numTables * (std::size_t{1} << cfg.tableLog2) *
        taggedEntryBits +
        scTable.size() * cfg.scCounterBits + histLengths.back() +
        folded + 4 /* useAltOnNa */;
}

void
TagePredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(base);
    for (const auto &table : tables) {
        sink.writeU64(table.size());
        for (const TaggedEntry &e : table) {
            sink.writePod(e.tag);
            sink.writeU8(e.ctr.raw());
            sink.writeU8(e.u.raw());
        }
    }
    sink.writeCounters(scTable);
    sink.writePodVector(hist);
    sink.writeU64(histPtr);
    for (const auto *folds :
         {&foldedIdx, &foldedTag0, &foldedTag1})
        for (const FoldedHistory &f : *folds)
            sink.writeU32(f.comp);
    sink.writeU8(useAltOnNa.raw());
    sink.writeU32(lfsr);
    sink.writeU32(tick);
    sink.writeBool(tickFlip);
    // Diagnostics are exported as gauges, so a resumed run must
    // report the same counts as an uninterrupted one (the gshare
    // conflict-profiler precedent).
    sink.writeU64(providerHits);
    sink.writeU64(altOverrides);
    sink.writeU64(allocations);
    sink.writeU64(allocFailures);
    sink.writeU64(uResets);
    sink.writeU64(scOverrides);
    sink.writeU64(scOverrideCorrect);
}

Status
TagePredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readCounters(base));
    for (auto &table : tables) {
        std::uint64_t count = 0;
        PABP_TRY(src.readPod(count));
        if (count != table.size())
            return Status(StatusCode::InvalidArgument,
                          "tagged table size mismatch");
        for (TaggedEntry &e : table) {
            PABP_TRY(src.readPod(e.tag));
            std::uint8_t raw = 0;
            PABP_TRY(src.readPod(raw));
            e.ctr.setRaw(raw);
            PABP_TRY(src.readPod(raw));
            e.u.setRaw(raw);
        }
    }
    PABP_TRY(src.readCounters(scTable));
    PABP_TRY(src.readPodVector(hist, hist.size()));
    PABP_TRY(src.readPod(histPtr));
    if (histPtr >= hist.size())
        return Status(StatusCode::Corrupt,
                      "history pointer out of range");
    for (auto *folds : {&foldedIdx, &foldedTag0, &foldedTag1})
        for (FoldedHistory &f : *folds) {
            PABP_TRY(src.readPod(f.comp));
            if (f.comp >> f.compLength)
                return Status(StatusCode::Corrupt,
                              "folded history exceeds its width");
        }
    std::uint8_t alt = 0;
    PABP_TRY(src.readPod(alt));
    useAltOnNa.setRaw(alt);
    PABP_TRY(src.readPod(lfsr));
    PABP_TRY(src.readPod(tick));
    PABP_TRY(src.readBool(tickFlip));
    PABP_TRY(src.readPod(providerHits));
    PABP_TRY(src.readPod(altOverrides));
    PABP_TRY(src.readPod(allocations));
    PABP_TRY(src.readPod(allocFailures));
    PABP_TRY(src.readPod(uResets));
    PABP_TRY(src.readPod(scOverrides));
    return src.readPod(scOverrideCorrect);
}

void
TagePredictor::exportHistory(std::vector<std::uint64_t> &out) const
{
    // Layout: histPtr, then the raw circular buffer packed 8 bytes
    // per word (its size is a power of two, fixed by the config),
    // then every folded register's comp value verbatim.
    out.push_back(histPtr);
    for (std::size_t i = 0; i < hist.size(); i += 8) {
        std::uint64_t word = 0;
        for (std::size_t j = 0; j < 8 && i + j < hist.size(); ++j)
            word |= static_cast<std::uint64_t>(hist[i + j]) << (8 * j);
        out.push_back(word);
    }
    for (const auto *folds : {&foldedIdx, &foldedTag0, &foldedTag1})
        for (const FoldedHistory &f : *folds)
            out.push_back(f.comp);
}

std::size_t
TagePredictor::importHistory(const std::uint64_t *words, std::size_t n)
{
    const std::size_t histWords = (hist.size() + 7) / 8;
    const std::size_t needed = 1 + histWords + 3 * cfg.numTables;
    pabp_assert(n >= needed);
    std::size_t w = 0;
    histPtr = static_cast<std::size_t>(words[w++]) & (hist.size() - 1);
    for (std::size_t i = 0; i < hist.size(); i += 8) {
        const std::uint64_t word = words[w++];
        for (std::size_t j = 0; j < 8 && i + j < hist.size(); ++j)
            hist[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
    for (auto *folds : {&foldedIdx, &foldedTag0, &foldedTag1})
        for (FoldedHistory &f : *folds)
            f.comp = static_cast<std::uint32_t>(words[w++]) &
                ((std::uint32_t{1} << f.compLength) - 1);
    return w;
}

} // namespace pabp
