#include "bpred/yags.hh"

#include "util/logging.hh"

namespace pabp {

YagsPredictor::YagsPredictor(unsigned choice_log2, unsigned cache_log2,
                             unsigned tag_bits)
    : choice(std::size_t{1} << choice_log2, SatCounter(2)),
      takenCache(std::size_t{1} << cache_log2),
      notTakenCache(std::size_t{1} << cache_log2),
      choiceLog2(choice_log2), cacheLog2(cache_log2), tagBits(tag_bits)
{
    pabp_assert(tag_bits >= 1 && tag_bits <= 16);
}

std::size_t
YagsPredictor::cacheIndex(std::uint32_t pc) const
{
    std::uint64_t hist = ghr & ((std::uint64_t{1} << cacheLog2) - 1);
    return (pc ^ hist) & (takenCache.size() - 1);
}

std::uint32_t
YagsPredictor::tagOf(std::uint32_t pc) const
{
    return pc & ((1u << tagBits) - 1);
}

bool
YagsPredictor::predict(std::uint32_t pc)
{
    bool choice_taken = choice[pc & (choice.size() - 1)].predictTaken();
    const auto &cache = choice_taken ? notTakenCache : takenCache;
    const CacheEntry &entry = cache[cacheIndex(pc)];
    if (entry.valid && entry.tag == tagOf(pc))
        return entry.counter.predictTaken();
    return choice_taken;
}

void
YagsPredictor::update(std::uint32_t pc, bool taken)
{
    SatCounter &choice_counter = choice[pc & (choice.size() - 1)];
    bool choice_taken = choice_counter.predictTaken();
    auto &cache = choice_taken ? notTakenCache : takenCache;
    CacheEntry &entry = cache[cacheIndex(pc)];
    bool hit = entry.valid && entry.tag == tagOf(pc);

    if (hit) {
        entry.counter.update(taken);
    } else if (taken != choice_taken) {
        // Allocate an exception entry for the deviating outcome.
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.counter = SatCounter(2, taken ? 2 : 1);
    }

    // The choice table trains unless the exception cache served a
    // correct deviation (standard YAGS update filtering).
    if (!(hit && entry.counter.predictTaken() == taken &&
          taken != choice_taken)) {
        choice_counter.update(taken);
    }

    ghr = (ghr << 1) | (taken ? 1 : 0);
}

void
YagsPredictor::injectHistoryBit(bool bit)
{
    ghr = (ghr << 1) | (bit ? 1 : 0);
}

void
YagsPredictor::reset()
{
    for (auto &c : choice)
        c = SatCounter(2);
    for (auto &e : takenCache)
        e = CacheEntry{};
    for (auto &e : notTakenCache)
        e = CacheEntry{};
    ghr = 0;
}

std::string
YagsPredictor::name() const
{
    return "yags-" + std::to_string(choice.size()) + "c" +
        std::to_string(takenCache.size()) + "e";
}

std::size_t
YagsPredictor::storageBits() const
{
    return choice.size() * 2 +
        2 * takenCache.size() * (2 + tagBits + 1) + cacheLog2;
}


void
YagsPredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(choice);
    for (const auto *cache : {&takenCache, &notTakenCache}) {
        sink.writeU64(cache->size());
        for (const CacheEntry &entry : *cache) {
            sink.writeBool(entry.valid);
            sink.writeU32(entry.tag);
            sink.writeU8(entry.counter.raw());
        }
    }
    sink.writeU64(ghr);
}

Status
YagsPredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readCounters(choice));
    for (auto *cache : {&takenCache, &notTakenCache}) {
        std::uint64_t count = 0;
        PABP_TRY(src.readPod(count));
        if (count != cache->size())
            return Status(StatusCode::InvalidArgument,
                          "direction cache size mismatch");
        for (CacheEntry &entry : *cache) {
            PABP_TRY(src.readBool(entry.valid));
            PABP_TRY(src.readPod(entry.tag));
            std::uint8_t raw = 0;
            PABP_TRY(src.readPod(raw));
            entry.counter.setRaw(raw);
        }
    }
    return src.readPod(ghr);
}

} // namespace pabp
