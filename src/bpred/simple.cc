#include "bpred/simple.hh"

#include "util/logging.hh"

namespace pabp {

BimodalPredictor::BimodalPredictor(unsigned entries_log2,
                                   unsigned counter_bits)
    : table(std::size_t{1} << entries_log2, SatCounter(counter_bits)),
      entriesLog2(entries_log2), counterBits(counter_bits)
{
    pabp_assert(entries_log2 >= 1 && entries_log2 <= 24);
}

bool
BimodalPredictor::predict(std::uint32_t pc)
{
    return table[index(pc)].predictTaken();
}

void
BimodalPredictor::update(std::uint32_t pc, bool taken)
{
    table[index(pc)].update(taken);
}

void
BimodalPredictor::reset()
{
    for (auto &c : table)
        c = SatCounter(counterBits);
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + std::to_string(table.size());
}

std::size_t
BimodalPredictor::storageBits() const
{
    return table.size() * counterBits;
}


void
BimodalPredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(table);
}

Status
BimodalPredictor::loadState(StateSource &src)
{
    return src.readCounters(table);
}

} // namespace pabp
