/**
 * @file
 * McFarling combining (tournament) predictor: two component
 * predictors plus a PC-indexed chooser table.
 */

#ifndef PABP_BPRED_COMBINING_HH
#define PABP_BPRED_COMBINING_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/** Tournament of two predictors with a 2-bit chooser per entry. */
class CombiningPredictor : public BranchPredictor
{
  public:
    /**
     * @param first Component selected when the chooser is low.
     * @param second Component selected when the chooser is high.
     * @param chooser_log2 log2 of the chooser table size.
     */
    CombiningPredictor(PredictorPtr first, PredictorPtr second,
                       unsigned chooser_log2);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    /** Fused fast-path call; `final` so a caller holding a
     *  CombiningPredictor& dispatches statically (no vtable). */
    bool predictAndUpdate(std::uint32_t pc, bool taken) final;
    /** In the header so the replay loop's devirtualised PGU drain
     *  skips one call level (the component injects stay virtual). */
    void
    injectHistoryBit(bool bit) override
    {
        firstPred->injectHistoryBit(bit);
        secondPred->injectHistoryBit(bit);
    }
    void
    injectHistoryBits(std::uint64_t bits, unsigned n) override
    {
        firstPred->injectHistoryBits(bits, n);
        secondPred->injectHistoryBits(bits, n);
    }
    bool hasGlobalHistory() const override;
    void
    exportHistory(std::vector<std::uint64_t> &out) const override
    {
        firstPred->exportHistory(out);
        secondPred->exportHistory(out);
    }
    std::size_t
    importHistory(const std::uint64_t *words, std::size_t n) override
    {
        std::size_t used = firstPred->importHistory(words, n);
        used += secondPred->importHistory(words + used, n - used);
        return used;
    }
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

  private:
    PredictorPtr firstPred;
    PredictorPtr secondPred;
    std::vector<SatCounter> chooser;

    // The components are polled once at predict() and their answers
    // reused at update(), keeping their predict/update pairing intact.
    bool lastFirst = false;
    bool lastSecond = false;

    std::size_t index(std::uint32_t pc) const
    {
        return pc & (chooser.size() - 1);
    }
};

} // namespace pabp

#endif // PABP_BPRED_COMBINING_HH
