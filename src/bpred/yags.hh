/**
 * @file
 * YAGS predictor (Eden & Mudge, MICRO 1998): a bimodal choice table
 * provides the default direction; two tagged direction caches (one
 * for branches that deviate "taken", one for "not taken") store only
 * the exceptions, indexed gshare-style. Included as the strongest
 * conventional baseline of the paper's era: it already mitigates the
 * aliasing that predicated code aggravates, which makes it the
 * interesting comparison point for the squash filter's
 * pollution-removal benefit.
 */

#ifndef PABP_BPRED_YAGS_HH
#define PABP_BPRED_YAGS_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/** YAGS with partial tags and global-history injection support. */
class YagsPredictor : public BranchPredictor
{
  public:
    /**
     * @param choice_log2 log2 of the bimodal choice table.
     * @param cache_log2 log2 of each direction cache.
     * @param tag_bits Partial tag width (6-8 typical).
     */
    YagsPredictor(unsigned choice_log2, unsigned cache_log2,
                  unsigned tag_bits = 8);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    void injectHistoryBit(bool bit) override;
    bool hasGlobalHistory() const override { return true; }
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

  private:
    struct CacheEntry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        SatCounter counter{2};
    };

    std::vector<SatCounter> choice;
    std::vector<CacheEntry> takenCache;    ///< exceptions when choice=NT
    std::vector<CacheEntry> notTakenCache; ///< exceptions when choice=T
    unsigned choiceLog2;
    unsigned cacheLog2;
    unsigned tagBits;
    std::uint64_t ghr = 0;

    std::size_t cacheIndex(std::uint32_t pc) const;
    std::uint32_t tagOf(std::uint32_t pc) const;
};

} // namespace pabp

#endif // PABP_BPRED_YAGS_HH
