/**
 * @file
 * Perceptron branch predictor (Jimenez & Lin, HPCA 2001) - the other
 * contemporary long-history predictor. Included both as a stronger
 * baseline and because it composes naturally with predicate global
 * update: injected predicate bits become additional perceptron
 * inputs, exactly like branch-outcome history bits.
 */

#ifndef PABP_BPRED_PERCEPTRON_HH
#define PABP_BPRED_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "bpred/predictor.hh"

namespace pabp {

/** Global-history perceptron predictor. */
class PerceptronPredictor : public BranchPredictor
{
  public:
    /**
     * @param rows_log2 log2 of the number of perceptrons.
     * @param history_bits History (= weights per perceptron - 1).
     * @param weight_bits Signed weight width (saturation bound).
     */
    PerceptronPredictor(unsigned rows_log2, unsigned history_bits,
                        unsigned weight_bits = 8);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    /** Fused fast-path call; `final` so a caller holding a
     *  PerceptronPredictor& dispatches statically (no vtable). */
    bool predictAndUpdate(std::uint32_t pc, bool taken) final;
    /** In the header so the replay loop's devirtualised PGU drain
     *  inlines it (see GSharePredictor::injectHistoryBit). */
    void
    injectHistoryBit(bool bit) override
    {
        ghr = (ghr << 1) | (bit ? 1 : 0);
    }
    /** Whole-word equivalent of n single-bit injects (contract in
     *  BranchPredictor::injectHistoryBits): one shift-or. */
    void
    injectHistoryBits(std::uint64_t bits, unsigned n) override
    {
        ghr = n >= 64 ? bits : (ghr << n) | bits;
    }
    bool hasGlobalHistory() const override { return true; }
    void
    exportHistory(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(ghr);
    }
    std::size_t
    importHistory(const std::uint64_t *words, std::size_t n) override
    {
        if (n >= 1)
            ghr = words[0];
        return 1;
    }
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

    std::uint64_t history() const { return ghr; }

  private:
    unsigned rowsLog2;
    unsigned histBits;
    int weightMax;
    int threshold;
    std::vector<std::int16_t> weights; ///< rows x (histBits + 1)
    std::uint64_t ghr = 0;

    // predict() latches its computation for the paired update().
    std::int32_t lastOutput = 0;
    std::uint64_t lastHistory = 0;
    std::size_t lastRow = 0;

    std::int16_t *row(std::size_t r) { return &weights[r * (histBits + 1)]; }
    void saturatingAdjust(std::int16_t &w, bool up);
};

} // namespace pabp

#endif // PABP_BPRED_PERCEPTRON_HH
