/**
 * @file
 * Branch target buffer and return address stack. Direction prediction
 * is the paper's subject; these two supply the targets so the engine
 * and the pipeline model charge realistic penalties for taken
 * branches they have no target for.
 *
 * Lookup side-effect policy (one policy, both consumers): lookup() is
 * the PREDICTING probe - it touches LRU recency and counts exactly
 * one hit or miss - and update() installs/refreshes the target
 * without counting anything. Every taken control transfer performs
 * exactly one lookup() followed by one update() for the same pc, so
 * btb.hits + btb.misses equals the number of predicted transfers
 * regardless of replay strategy; the fast-vs-reference equivalence
 * tests pin the counters byte-identical (tests/test_replay_fast.cc).
 */

#ifndef PABP_BPRED_BTB_HH
#define PABP_BPRED_BTB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param sets_log2 log2 of the number of sets.
     * @param ways Associativity.
     */
    Btb(unsigned sets_log2, unsigned ways);

    /** Predicted target for @p pc, if present. Counts one hit or
     *  miss and refreshes LRU recency on a hit (see the file-level
     *  lookup side-effect policy). */
    std::optional<std::uint32_t> lookup(std::uint32_t pc);

    /** Install/refresh a branch's target. Never counts. */
    void update(std::uint32_t pc, std::uint32_t target);

    void reset();
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

    /** Zero the counters; table contents and recency persist. */
    void
    resetStats()
    {
        hitCount = 0;
        missCount = 0;
    }

    /** Gauges under "<prefix>hits" / "<prefix>misses". */
    void registerStats(StatGroup &group, const std::string &prefix);

    /**
     * @name Checkpointing
     * Entries are serialised field by field (never as raw structs -
     * padding bytes would make the checkpoint CRC unstable), geometry
     * is verified on load.
     * @{
     */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint32_t target = 0;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> entries;
    unsigned setsLog2;
    unsigned numWays;
    std::uint64_t useClock = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;

    Entry *setBase(std::uint32_t pc);
};

/** Fixed-depth return address stack with wrap-around overwrite. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth);

    void push(std::uint32_t return_pc);

    /** Pop a prediction; empty stack returns nullopt. */
    std::optional<std::uint32_t> pop();

    void reset();
    unsigned size() const { return count; }

    std::uint64_t pushes() const { return pushCount; }
    std::uint64_t pops() const { return popCount; }
    /** Pushes that wrapped around and overwrote a live entry. */
    std::uint64_t overflows() const { return overflowCount; }
    /** Pops on an empty stack (no prediction available). */
    std::uint64_t underflows() const { return underflowCount; }

    /** Zero the counters; stack contents persist. */
    void
    resetStats()
    {
        pushCount = 0;
        popCount = 0;
        overflowCount = 0;
        underflowCount = 0;
    }

    /** Gauges under "<prefix>pushes" / "pops" / "overflows" /
     *  "underflows". */
    void registerStats(StatGroup &group, const std::string &prefix);

    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

  private:
    std::vector<std::uint32_t> stack;
    unsigned top = 0;
    unsigned count = 0;
    std::uint64_t pushCount = 0;
    std::uint64_t popCount = 0;
    std::uint64_t overflowCount = 0;
    std::uint64_t underflowCount = 0;
};

} // namespace pabp

#endif // PABP_BPRED_BTB_HH
