/**
 * @file
 * Branch target buffer and return address stack. Direction prediction
 * is the paper's subject; these two supply the targets so the pipeline
 * model charges realistic penalties for taken branches it has no
 * target for.
 */

#ifndef PABP_BPRED_BTB_HH
#define PABP_BPRED_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace pabp {

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param sets_log2 log2 of the number of sets.
     * @param ways Associativity.
     */
    Btb(unsigned sets_log2, unsigned ways);

    /** Predicted target for @p pc, if present. */
    std::optional<std::uint32_t> lookup(std::uint32_t pc);

    /** Install/refresh a branch's target. */
    void update(std::uint32_t pc, std::uint32_t target);

    void reset();
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint32_t target = 0;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> entries;
    unsigned setsLog2;
    unsigned numWays;
    std::uint64_t useClock = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;

    Entry *setBase(std::uint32_t pc);
};

/** Fixed-depth return address stack with wrap-around overwrite. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth);

    void push(std::uint32_t return_pc);

    /** Pop a prediction; empty stack returns nullopt. */
    std::optional<std::uint32_t> pop();

    void reset();
    unsigned size() const { return count; }

  private:
    std::vector<std::uint32_t> stack;
    unsigned top = 0;
    unsigned count = 0;
};

} // namespace pabp

#endif // PABP_BPRED_BTB_HH
