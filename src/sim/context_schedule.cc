#include "sim/context_schedule.hh"

#include "util/logging.hh"

namespace pabp {

Expected<ScheduleKind>
parseScheduleKind(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return ScheduleKind::RoundRobin;
    if (name == "bursty")
        return ScheduleKind::Bursty;
    return Status(StatusCode::InvalidArgument,
                  "unknown context schedule '" + name +
                      "' (expected rr or bursty)");
}

const char *
scheduleKindName(ScheduleKind kind)
{
    return kind == ScheduleKind::Bursty ? "bursty" : "rr";
}

ContextSchedule::ContextSchedule(const ContextScheduleConfig &config)
    : cfg(config),
      // A zero xorshift state would stay zero forever; fold the seed
      // through a splitmix-style constant and keep it non-zero.
      rngState((config.seed ^ 0x9E3779B97F4A7C15ull) | 1)
{
    pabp_assert(cfg.contexts >= 1);
    pabp_assert(cfg.quantum >= 1);
}

std::uint64_t
ContextSchedule::rngNext()
{
    std::uint64_t x = rngState;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rngState = x;
    return x;
}

ContextSchedule::Slice
ContextSchedule::next()
{
    Slice s;
    if (cfg.kind == ScheduleKind::RoundRobin) {
        s.context = rotor;
        s.length = cfg.quantum;
        rotor = (rotor + 1) % cfg.contexts;
        return s;
    }
    s.context = static_cast<unsigned>(rngNext() % cfg.contexts);
    s.length = 1 + rngNext() % (2 * cfg.quantum);
    return s;
}

} // namespace pabp
