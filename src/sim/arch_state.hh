/**
 * @file
 * Architectural state of the predicated machine: general registers,
 * predicate registers, data memory and the call stack.
 */

#ifndef PABP_SIM_ARCH_STATE_HH
#define PABP_SIM_ARCH_STATE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "util/serialize.hh"
#include "util/status.hh"

namespace pabp {

/**
 * Full architectural state. r0 reads as zero and ignores writes; p0
 * reads as true and ignores writes. Data memory is a flat word array;
 * effective addresses are masked into range so execution is total and
 * deterministic for any program.
 */
class ArchState
{
  public:
    /** @param mem_words Size of data memory in 64-bit words
     *         (rounded up to a power of two). */
    explicit ArchState(std::size_t mem_words = 1u << 20);

    std::int64_t readGpr(unsigned idx) const { return gpr[idx]; }

    void
    writeGpr(unsigned idx, std::int64_t value)
    {
        if (idx != 0)
            gpr[idx] = value;
    }

    bool readPred(unsigned idx) const { return pred[idx]; }

    void
    writePred(unsigned idx, bool value)
    {
        if (idx != 0)
            pred[idx] = value;
    }

    /** Mask an effective address into the memory range. */
    std::size_t
    maskAddr(std::int64_t addr) const
    {
        return static_cast<std::size_t>(addr) & (mem.size() - 1);
    }

    std::int64_t readMem(std::int64_t addr) const
    {
        return mem[maskAddr(addr)];
    }

    void writeMem(std::int64_t addr, std::int64_t value)
    {
        mem[maskAddr(addr)] = value;
    }

    std::size_t memWords() const { return mem.size(); }

    /** Reset registers, predicates, pc and call stack; keep memory. */
    void resetRegs();

    /** Equality over registers + predicates + memory (for the
     *  if-conversion equivalence property tests). */
    bool sameArchOutcome(const ArchState &other) const;

    /**
     * @name Checkpointing
     * Full architectural state: registers, predicates, pc, call
     * stack and data memory. Memory geometry must match on restore
     * (a checkpoint resumes an identically-configured machine).
     * @{
     */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);
    /** @} */

    std::uint32_t pc = 0;
    bool halted = false;
    std::vector<std::uint32_t> callStack;

  private:
    std::array<std::int64_t, numGprs> gpr{};
    std::array<bool, numPredRegs> pred{};
    std::vector<std::int64_t> mem;
};

} // namespace pabp

#endif // PABP_SIM_ARCH_STATE_HH
