/**
 * @file
 * Binary trace serialisation. A recorded trace captures everything a
 * prediction study needs from the dynamic stream - static instruction
 * table plus per-instruction events - so expensive workloads can be
 * emulated once and replayed against many predictor configurations
 * (the record/replay methodology of trace-driven studies).
 *
 * Format (little-endian, versioned):
 *   header: magic "PABPTRC1", program size, instruction records
 *   then one compact event record per executed instruction.
 */

#ifndef PABP_SIM_TRACE_IO_HH
#define PABP_SIM_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/emulator.hh"

namespace pabp {

/** A fully materialised trace: program text + dynamic events. */
struct RecordedTrace
{
    Program prog;

    /** Compact per-instruction dynamic record. */
    struct Event
    {
        std::uint32_t pc;
        std::uint8_t flags; ///< bit0 guard, bit1 taken, bits 2-3
                            ///< numPredWrites
        std::uint8_t predReg[2];
        std::uint8_t predVal; ///< bit0/bit1 = write values, bit2 cmpRel
        std::uint32_t nextPc;

        bool operator==(const Event &) const = default;
    };
    std::vector<Event> events;

    std::size_t size() const { return events.size(); }

    /** Reconstitute the DynInst for event @p i (seq = i). */
    DynInst materialise(std::size_t i) const;
};

/** Record up to @p max_insts instructions of @p emu. */
RecordedTrace recordTrace(Emulator &emu, std::uint64_t max_insts);

/** Serialise to a stream. Returns bytes written. */
std::uint64_t writeTrace(const RecordedTrace &trace, std::ostream &os);

/**
 * Deserialise. Fatal on bad magic/version; panics on truncation.
 */
RecordedTrace readTrace(std::istream &is);

/** Convenience file wrappers (fatal on I/O failure). */
void saveTraceFile(const RecordedTrace &trace, const std::string &path);
RecordedTrace loadTraceFile(const std::string &path);

} // namespace pabp

#endif // PABP_SIM_TRACE_IO_HH
