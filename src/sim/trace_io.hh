/**
 * @file
 * Binary trace serialisation. A recorded trace captures everything a
 * prediction study needs from the dynamic stream - static instruction
 * table plus per-instruction events - so expensive workloads can be
 * emulated once and replayed against many predictor configurations
 * (the record/replay methodology of trace-driven studies).
 *
 * Two on-disk versions exist (both little-endian):
 *
 *  v1 ("PABPTRC1"): the original unprotected layout - program size,
 *    instruction records, event count, event records. Still readable.
 *
 *  v2 ("PABPTRC2"): the hardened layout this library writes.
 *    | magic[8] | u32 version | u64 numInsts | u64 numEvents
 *    | u32 headerCrc   - CRC-32 of the 28 bytes above
 *    | program section - 20 bytes per instruction
 *    | u32 progCrc     - CRC-32 of the program section
 *    | event blocks    - u32 count (<= 4096), count*12 payload bytes,
 *    |                   u32 blockCrc over count + payload
 *    | u64 footer      - ASCII "PABPEND2" end-of-artifact sentinel
 *    Per-block CRCs localise corruption, which is what makes salvage
 *    (recovering the longest valid event prefix) possible.
 *
 * Readers never terminate the process on malformed input: every
 * failure mode maps to a typed Status (BadMagic, VersionMismatch,
 * ChecksumMismatch, Truncated, IoError, Corrupt). The pabp_fatal
 * wrappers survive only as CLI conveniences. See docs/ROBUSTNESS.md.
 */

#ifndef PABP_SIM_TRACE_IO_HH
#define PABP_SIM_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/emulator.hh"
#include "util/status.hh"

namespace pabp {

/** A fully materialised trace: program text + dynamic events. */
struct RecordedTrace
{
    Program prog;

    /** Compact per-instruction dynamic record. */
    struct Event
    {
        std::uint32_t pc;
        std::uint8_t flags; ///< bit0 guard, bit1 taken, bits 2-3
                            ///< numPredWrites
        std::uint8_t predReg[2];
        std::uint8_t predVal; ///< bit0/bit1 = write values, bit2 cmpRel
        std::uint32_t nextPc;

        bool operator==(const Event &) const = default;
    };
    std::vector<Event> events;

    std::size_t size() const { return events.size(); }

    /** Reconstitute the DynInst for event @p i (seq = i). */
    DynInst materialise(std::size_t i) const;
};

/** Record up to @p max_insts instructions of @p emu. */
RecordedTrace recordTrace(Emulator &emu, std::uint64_t max_insts);

/** Reader knobs. */
struct TraceReadOptions
{
    /**
     * Best-effort recovery: when the event section of a v2 trace is
     * damaged (CRC failure, truncation, corrupt block), return the
     * longest prefix of events from fully-valid blocks instead of an
     * error. The header and program section must still verify - a
     * trace whose static program is damaged cannot be replayed at all.
     */
    bool salvage = false;
};

/** What the reader learned about the artifact. */
struct TraceReadInfo
{
    std::uint32_t version = 0;      ///< 1 or 2
    bool salvaged = false;          ///< salvage mode recovered a prefix
    std::uint64_t eventsDropped = 0; ///< events lost to salvage
};

/** Serialise in the current (v2) format. Returns bytes written. */
std::uint64_t writeTrace(const RecordedTrace &trace, std::ostream &os);

/** Serialise in the legacy v1 format (compatibility testing). */
std::uint64_t writeTraceV1(const RecordedTrace &trace, std::ostream &os);

/**
 * Deserialise a v1 or v2 trace (dispatched on the magic). All
 * malformed-input paths return a typed Status; nothing aborts.
 */
Expected<RecordedTrace> readTrace(std::istream &is,
                                  const TraceReadOptions &opts = {},
                                  TraceReadInfo *info = nullptr);

/** Recoverable file wrappers. */
Status trySaveTraceFile(const RecordedTrace &trace,
                        const std::string &path);
Expected<RecordedTrace> tryLoadTraceFile(const std::string &path,
                                         const TraceReadOptions &opts = {},
                                         TraceReadInfo *info = nullptr);

/** CLI shims: fatal on any failure. Library code wants the try* forms. */
void saveTraceFile(const RecordedTrace &trace, const std::string &path);
RecordedTrace loadTraceFile(const std::string &path);

/**
 * @name Static-instruction record packing
 * The 20-byte on-disk instruction record (architectural encoding plus
 * the regionId sidecar) shared by the trace formats and the decoded-
 * trace file format (sim/decoded_trace.hh).
 * @{
 */
constexpr std::size_t instRecordSize = 20;
void packInstRecord(const Inst &inst, unsigned char *out);
/** False when the record is not a valid encoding. */
bool unpackInstRecord(const unsigned char *p, Inst &inst);
/** @} */

} // namespace pabp

#endif // PABP_SIM_TRACE_IO_HH
