#include "sim/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace pabp {

namespace {

constexpr char traceMagicV1[8] = {'P', 'A', 'B', 'P', 'T', 'R', 'C', '1'};
constexpr char traceMagicV2[8] = {'P', 'A', 'B', 'P', 'T', 'R', 'C', '2'};
constexpr char traceFooter[8] = {'P', 'A', 'B', 'P', 'E', 'N', 'D', '2'};

constexpr std::uint32_t traceVersion2 = 2;

/** On-disk record sizes (fixed by both format versions). */
constexpr std::size_t eventRecordBytes = 12; // pc,flags,regs,val,nextPc

/** Events per CRC-protected v2 block. Small enough that salvage
 *  loses at most this many events per damaged region. */
constexpr std::uint32_t eventBlockCapacity = 4096;

/** Allocation sanity bound; a header claiming more is corrupt. */
constexpr std::uint64_t maxTraceInsts = 1u << 26;

void
packInst(const Inst &inst, unsigned char *out)
{
    EncodedInst enc = encode(inst);
    std::memcpy(out, &enc.word0, 8);
    std::memcpy(out + 8, &enc.word1, 8);
    // regionId travels as a sidecar (not architectural encoding).
    std::memcpy(out + 16, &inst.regionId, 4);
}

/** Decode one 20-byte program record; false on invalid encoding. */
bool
unpackInst(const unsigned char *p, Inst &inst)
{
    EncodedInst enc;
    std::memcpy(&enc.word0, p, 8);
    std::memcpy(&enc.word1, p + 8, 8);
    auto decoded = tryDecode(enc);
    if (!decoded)
        return false;
    inst = *decoded;
    std::memcpy(&inst.regionId, p + 16, 4);
    return true;
}

void
packEvent(const RecordedTrace::Event &event, unsigned char *out)
{
    std::memcpy(out, &event.pc, 4);
    out[4] = event.flags;
    out[5] = event.predReg[0];
    out[6] = event.predReg[1];
    out[7] = event.predVal;
    std::memcpy(out + 8, &event.nextPc, 4);
}

RecordedTrace::Event
unpackEvent(const unsigned char *p)
{
    RecordedTrace::Event event{};
    std::memcpy(&event.pc, p, 4);
    event.flags = p[4];
    event.predReg[0] = p[5];
    event.predReg[1] = p[6];
    event.predVal = p[7];
    std::memcpy(&event.nextPc, p + 8, 4);
    return event;
}

Expected<RecordedTrace> readTraceV1(StateSource &src, TraceReadInfo &info);
Expected<RecordedTrace> readTraceV2(StateSource &src,
                                    const TraceReadOptions &opts,
                                    TraceReadInfo &info);

} // anonymous namespace

DynInst
RecordedTrace::materialise(std::size_t i) const
{
    const Event &event = events.at(i);
    const Inst &inst = prog.insts.at(event.pc);

    DynInst dyn;
    dyn.seq = i;
    dyn.pc = event.pc;
    dyn.inst = &inst;
    dyn.guard = event.flags & 1;
    dyn.taken = (event.flags >> 1) & 1;
    dyn.isControl = inst.isControl();
    dyn.nextPc = event.nextPc;
    dyn.numPredWrites = (event.flags >> 2) & 3;
    for (unsigned w = 0; w < dyn.numPredWrites; ++w) {
        dyn.predWrites[w].reg = event.predReg[w];
        dyn.predWrites[w].value = (event.predVal >> w) & 1;
    }
    dyn.cmpRel = (event.predVal >> 2) & 1;
    dyn.isMem = inst.op == Opcode::Load || inst.op == Opcode::Store;
    return dyn;
}

RecordedTrace
recordTrace(Emulator &emu, std::uint64_t max_insts)
{
    RecordedTrace trace;
    trace.prog = emu.program();

    DynInst dyn;
    for (std::uint64_t i = 0; i < max_insts && emu.step(dyn); ++i) {
        RecordedTrace::Event event{};
        event.pc = dyn.pc;
        event.flags = static_cast<std::uint8_t>(
            (dyn.guard ? 1 : 0) | (dyn.taken ? 2 : 0) |
            (dyn.numPredWrites << 2));
        for (unsigned w = 0; w < dyn.numPredWrites; ++w) {
            event.predReg[w] = dyn.predWrites[w].reg;
            if (dyn.predWrites[w].value)
                event.predVal |= static_cast<std::uint8_t>(1u << w);
        }
        if (dyn.cmpRel)
            event.predVal |= 4;
        event.nextPc = dyn.nextPc;
        trace.events.push_back(event);
    }
    return trace;
}

std::uint64_t
writeTrace(const RecordedTrace &trace, std::ostream &os)
{
    StateSink sink(os);

    // Header, CRC-protected including the magic.
    sink.writeBytes(traceMagicV2, sizeof(traceMagicV2));
    sink.writeU32(traceVersion2);
    sink.writeU64(trace.prog.size());
    sink.writeU64(trace.events.size());
    sink.writeU32(sink.crc32());
    sink.resetCrc();

    // Program section.
    unsigned char record[instRecordSize];
    for (const Inst &inst : trace.prog.insts) {
        packInst(inst, record);
        sink.writeBytes(record, instRecordSize);
    }
    sink.writeU32(sink.crc32());

    // Event blocks, each independently CRC-protected so corruption is
    // localised and salvage can keep everything before the damage.
    std::uint64_t next = 0;
    std::vector<unsigned char> payload;
    while (next < trace.events.size()) {
        auto count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(eventBlockCapacity,
                                    trace.events.size() - next));
        payload.resize(count * eventRecordBytes);
        for (std::uint32_t i = 0; i < count; ++i)
            packEvent(trace.events[next + i],
                      payload.data() + i * eventRecordBytes);

        sink.resetCrc();
        sink.writeU32(count);
        sink.writeBytes(payload.data(), payload.size());
        sink.writeU32(sink.crc32());
        next += count;
    }

    sink.writeBytes(traceFooter, sizeof(traceFooter));
    return sink.bytesWritten();
}

std::uint64_t
writeTraceV1(const RecordedTrace &trace, std::ostream &os)
{
    StateSink sink(os);
    sink.writeBytes(traceMagicV1, sizeof(traceMagicV1));
    sink.writeU64(trace.prog.size());
    unsigned char record[instRecordSize];
    for (const Inst &inst : trace.prog.insts) {
        packInst(inst, record);
        sink.writeBytes(record, instRecordSize);
    }
    sink.writeU64(trace.events.size());
    unsigned char event_record[eventRecordBytes];
    for (const RecordedTrace::Event &event : trace.events) {
        packEvent(event, event_record);
        sink.writeBytes(event_record, eventRecordBytes);
    }
    return sink.bytesWritten();
}

namespace {

Expected<RecordedTrace>
readTraceV1(StateSource &src, TraceReadInfo &info)
{
    info.version = 1;
    RecordedTrace trace;

    std::uint64_t num_insts = 0;
    PABP_TRY(src.readPod(num_insts));
    // Never trust an unprotected count for preallocation.
    trace.prog.insts.reserve(
        std::min<std::uint64_t>(num_insts, 1u << 16));
    unsigned char record[instRecordSize];
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        PABP_TRY(src.readBytes(record, instRecordSize));
        Inst inst;
        if (!unpackInst(record, inst))
            return Status(StatusCode::Corrupt,
                          "invalid instruction encoding at pc " +
                              std::to_string(i));
        trace.prog.insts.push_back(inst);
    }

    std::uint64_t num_events = 0;
    PABP_TRY(src.readPod(num_events));
    trace.events.reserve(std::min<std::uint64_t>(num_events, 1u << 20));
    unsigned char event_record[eventRecordBytes];
    for (std::uint64_t i = 0; i < num_events; ++i) {
        PABP_TRY(src.readBytes(event_record, eventRecordBytes));
        RecordedTrace::Event event = unpackEvent(event_record);
        if (event.pc >= trace.prog.size())
            return Status(StatusCode::Corrupt,
                          "trace event pc " + std::to_string(event.pc) +
                              " out of range");
        trace.events.push_back(event);
    }
    return trace;
}

Expected<RecordedTrace>
readTraceV2(StateSource &src, const TraceReadOptions &opts,
            TraceReadInfo &info)
{
    info.version = 2;

    // Header (the magic already passed through the CRC in readTrace).
    std::uint32_t version = 0;
    std::uint64_t num_insts = 0, num_events = 0;
    PABP_TRY(src.readPod(version));
    PABP_TRY(src.readPod(num_insts));
    PABP_TRY(src.readPod(num_events));
    std::uint32_t header_crc = src.crc32();
    std::uint32_t stored_header_crc = 0;
    PABP_TRY(src.readPod(stored_header_crc));
    if (stored_header_crc != header_crc)
        return Status(StatusCode::ChecksumMismatch,
                      "trace header CRC mismatch");
    if (version != traceVersion2)
        return Status(StatusCode::VersionMismatch,
                      "trace version " + std::to_string(version) +
                          " not supported");
    if (num_insts > maxTraceInsts)
        return Status(StatusCode::Corrupt,
                      "implausible instruction count " +
                          std::to_string(num_insts));

    // Program section: verify the CRC over the raw bytes *before*
    // decoding, so a damaged section cannot feed the decoder garbage.
    src.resetCrc();
    std::vector<unsigned char> program_bytes(num_insts * instRecordSize);
    PABP_TRY(src.readBytes(program_bytes.data(), program_bytes.size()));
    std::uint32_t prog_crc = src.crc32();
    std::uint32_t stored_prog_crc = 0;
    PABP_TRY(src.readPod(stored_prog_crc));
    if (stored_prog_crc != prog_crc)
        return Status(StatusCode::ChecksumMismatch,
                      "program section CRC mismatch");

    RecordedTrace trace;
    trace.prog.insts.reserve(num_insts);
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        Inst inst;
        if (!unpackInst(program_bytes.data() + i * instRecordSize, inst))
            return Status(StatusCode::Corrupt,
                          "invalid instruction encoding at pc " +
                              std::to_string(i));
        trace.prog.insts.push_back(inst);
    }

    // Event blocks. In salvage mode any damage here ends the read
    // with the events of every fully-verified block kept; damage to
    // the header or program above is never salvageable.
    auto salvage_or = [&](Status error) -> Expected<RecordedTrace> {
        if (!opts.salvage)
            return error;
        info.salvaged = true;
        info.eventsDropped = num_events - trace.events.size();
        return std::move(trace);
    };

    trace.events.reserve(std::min<std::uint64_t>(num_events, 1u << 20));
    std::uint64_t remaining = num_events;
    std::vector<unsigned char> payload;
    while (remaining > 0) {
        src.resetCrc();
        std::uint32_t count = 0;
        if (Status st = src.readPod(count); !st.ok())
            return salvage_or(std::move(st));
        if (count == 0 || count > eventBlockCapacity || count > remaining)
            return salvage_or(
                Status(StatusCode::Corrupt,
                       "invalid event block count " +
                           std::to_string(count)));
        payload.resize(count * eventRecordBytes);
        if (Status st = src.readBytes(payload.data(), payload.size());
            !st.ok()) {
            return salvage_or(std::move(st));
        }
        std::uint32_t block_crc = src.crc32();
        std::uint32_t stored_block_crc = 0;
        if (Status st = src.readPod(stored_block_crc); !st.ok())
            return salvage_or(std::move(st));
        if (stored_block_crc != block_crc)
            return salvage_or(Status(StatusCode::ChecksumMismatch,
                                     "event block CRC mismatch"));

        // Only append once the whole block verified, so a salvaged
        // trace is always a prefix of whole valid blocks.
        for (std::uint32_t i = 0; i < count; ++i) {
            RecordedTrace::Event event =
                unpackEvent(payload.data() + i * eventRecordBytes);
            if (event.pc >= trace.prog.size())
                return salvage_or(
                    Status(StatusCode::Corrupt,
                           "trace event pc " + std::to_string(event.pc) +
                               " out of range"));
            trace.events.push_back(event);
        }
        remaining -= count;
    }

    char footer[8];
    if (Status st = src.readBytes(footer, sizeof(footer)); !st.ok())
        return salvage_or(std::move(st));
    if (std::memcmp(footer, traceFooter, sizeof(footer)) != 0)
        return salvage_or(Status(StatusCode::Corrupt,
                                 "missing end-of-trace sentinel"));
    return std::move(trace);
}

} // anonymous namespace

Expected<RecordedTrace>
readTrace(std::istream &is, const TraceReadOptions &opts,
          TraceReadInfo *info)
{
    TraceReadInfo local_info;
    TraceReadInfo &out = info ? *info : local_info;
    out = TraceReadInfo{};

    StateSource src(is);
    char magic[8];
    PABP_TRY(src.readBytes(magic, sizeof(magic)));
    if (std::memcmp(magic, traceMagicV1, 7) != 0)
        return Status(StatusCode::BadMagic,
                      "not a pabp trace (bad magic)");
    if (magic[7] == '1')
        return readTraceV1(src, out);
    if (magic[7] == '2')
        return readTraceV2(src, opts, out);
    return Status(StatusCode::VersionMismatch,
                  std::string("unsupported trace container version '") +
                      magic[7] + "'");
}

Status
trySaveTraceFile(const RecordedTrace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return Status(StatusCode::IoError,
                      "cannot open trace file for writing: " + path);
    writeTrace(trace, os);
    os.flush();
    if (!os)
        return Status(StatusCode::IoError,
                      "write failure on trace file: " + path);
    return Status();
}

Expected<RecordedTrace>
tryLoadTraceFile(const std::string &path, const TraceReadOptions &opts,
                 TraceReadInfo *info)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status(StatusCode::IoError,
                      "cannot open trace file: " + path);
    return readTrace(is, opts, info);
}

void
saveTraceFile(const RecordedTrace &trace, const std::string &path)
{
    Status status = trySaveTraceFile(trace, path);
    if (!status.ok())
        pabp_fatal(status.toString());
}

RecordedTrace
loadTraceFile(const std::string &path)
{
    Expected<RecordedTrace> loaded = tryLoadTraceFile(path);
    if (!loaded.ok())
        pabp_fatal(loaded.status().toString());
    return std::move(loaded.value());
}

void
packInstRecord(const Inst &inst, unsigned char *out)
{
    packInst(inst, out);
}

bool
unpackInstRecord(const unsigned char *p, Inst &inst)
{
    return unpackInst(p, inst);
}

} // namespace pabp
