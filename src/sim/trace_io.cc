#include "sim/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace pabp {

namespace {

constexpr char traceMagic[8] = {'P', 'A', 'B', 'P', 'T', 'R', 'C', '1'};

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        pabp_panic("truncated trace stream");
    return value;
}

} // anonymous namespace

DynInst
RecordedTrace::materialise(std::size_t i) const
{
    const Event &event = events.at(i);
    const Inst &inst = prog.insts.at(event.pc);

    DynInst dyn;
    dyn.seq = i;
    dyn.pc = event.pc;
    dyn.inst = &inst;
    dyn.guard = event.flags & 1;
    dyn.taken = (event.flags >> 1) & 1;
    dyn.isControl = inst.isControl();
    dyn.nextPc = event.nextPc;
    dyn.numPredWrites = (event.flags >> 2) & 3;
    for (unsigned w = 0; w < dyn.numPredWrites; ++w) {
        dyn.predWrites[w].reg = event.predReg[w];
        dyn.predWrites[w].value = (event.predVal >> w) & 1;
    }
    dyn.cmpRel = (event.predVal >> 2) & 1;
    dyn.isMem = inst.op == Opcode::Load || inst.op == Opcode::Store;
    return dyn;
}

RecordedTrace
recordTrace(Emulator &emu, std::uint64_t max_insts)
{
    RecordedTrace trace;
    trace.prog = emu.program();

    DynInst dyn;
    for (std::uint64_t i = 0; i < max_insts && emu.step(dyn); ++i) {
        RecordedTrace::Event event{};
        event.pc = dyn.pc;
        event.flags = static_cast<std::uint8_t>(
            (dyn.guard ? 1 : 0) | (dyn.taken ? 2 : 0) |
            (dyn.numPredWrites << 2));
        for (unsigned w = 0; w < dyn.numPredWrites; ++w) {
            event.predReg[w] = dyn.predWrites[w].reg;
            if (dyn.predWrites[w].value)
                event.predVal |= static_cast<std::uint8_t>(1u << w);
        }
        if (dyn.cmpRel)
            event.predVal |= 4;
        event.nextPc = dyn.nextPc;
        trace.events.push_back(event);
    }
    return trace;
}

std::uint64_t
writeTrace(const RecordedTrace &trace, std::ostream &os)
{
    std::uint64_t bytes = 0;
    os.write(traceMagic, sizeof(traceMagic));
    bytes += sizeof(traceMagic);

    auto num_insts = static_cast<std::uint64_t>(trace.prog.size());
    writePod(os, num_insts);
    bytes += sizeof(num_insts);
    for (const Inst &inst : trace.prog.insts) {
        EncodedInst enc = encode(inst);
        writePod(os, enc.word0);
        writePod(os, enc.word1);
        // regionId travels as a sidecar (not architectural encoding).
        writePod(os, inst.regionId);
        bytes += 2 * sizeof(std::uint64_t) + sizeof(inst.regionId);
    }

    auto num_events = static_cast<std::uint64_t>(trace.events.size());
    writePod(os, num_events);
    bytes += sizeof(num_events);
    for (const RecordedTrace::Event &event : trace.events) {
        writePod(os, event.pc);
        writePod(os, event.flags);
        writePod(os, event.predReg[0]);
        writePod(os, event.predReg[1]);
        writePod(os, event.predVal);
        writePod(os, event.nextPc);
        bytes += 12;
    }
    return bytes;
}

RecordedTrace
readTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        pabp_fatal("not a pabp trace (bad magic)");

    RecordedTrace trace;
    auto num_insts = readPod<std::uint64_t>(is);
    trace.prog.insts.reserve(num_insts);
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        EncodedInst enc;
        enc.word0 = readPod<std::uint64_t>(is);
        enc.word1 = readPod<std::uint64_t>(is);
        Inst inst = decode(enc);
        inst.regionId = readPod<std::int32_t>(is);
        trace.prog.insts.push_back(inst);
    }

    auto num_events = readPod<std::uint64_t>(is);
    trace.events.reserve(num_events);
    for (std::uint64_t i = 0; i < num_events; ++i) {
        RecordedTrace::Event event{};
        event.pc = readPod<std::uint32_t>(is);
        event.flags = readPod<std::uint8_t>(is);
        event.predReg[0] = readPod<std::uint8_t>(is);
        event.predReg[1] = readPod<std::uint8_t>(is);
        event.predVal = readPod<std::uint8_t>(is);
        event.nextPc = readPod<std::uint32_t>(is);
        if (event.pc >= trace.prog.size())
            pabp_fatal("trace event pc out of range");
        trace.events.push_back(event);
    }
    return trace;
}

void
saveTraceFile(const RecordedTrace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        pabp_fatal("cannot open trace file for writing: " + path);
    writeTrace(trace, os);
    if (!os)
        pabp_fatal("write failure on trace file: " + path);
}

RecordedTrace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        pabp_fatal("cannot open trace file: " + path);
    return readTrace(is);
}

} // namespace pabp
