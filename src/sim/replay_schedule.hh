/**
 * @file
 * Per-trace cache of predictor-independent replay schedules.
 *
 * Everything the predicate techniques compute from the define stream
 * is a pure function of (trace events, engine predicate configuration,
 * predicate-component entry state) - none of it reads the base
 * predictor. The SFPF's guard resolution per branch depends only on
 * the define writes and the visibility delay; the PGU's history-bit
 * stream depends only on the defines and the PGU configuration. A
 * sweep replays one decoded trace against MANY predictors (and the
 * throughput bench against many repeats), so the fast replay loop
 * factors that work out: the first batch over a given (range, config,
 * entry state) runs the define kernel and records its outputs - the
 * per-branch guard states, the packed PGU bit stream, and the
 * predicate file's exit state - as a ReplaySchedule on the trace;
 * every later identical batch replays branches only, skipping the
 * defines entirely. This is what closes the `+both` throughput gap to
 * the base configuration: after warm-up both loops touch only the
 * branch events (docs/PERF.md).
 *
 * Correctness: a schedule is reused only when every input it was
 * derived from matches EXACTLY - trace identity (the cache lives on
 * the trace), event range, the configuration fields the define kernel
 * reads, and the full entry state of the predicate file and PGU queue
 * (compared value for value, not hashed, so a stale hit is
 * impossible). The fast-vs-reference equivalence suite replays warm
 * caches and pins stats, profile and checkpoint bytes bit-identical.
 *
 * Thread safety: find/insert are mutex-guarded; schedules are
 * immutable once published (shared_ptr<const>), so concurrent sweep
 * threads replaying one trace share them freely.
 */

#ifndef PABP_SIM_REPLAY_SCHEDULE_HH
#define PABP_SIM_REPLAY_SCHEDULE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace pabp {

/**
 * One pending predicate write (DelayedPredicateFile::Pending is an
 * alias of this). Defined here, below the core layer, so a schedule
 * can snapshot queue contents without a dependency inversion.
 */
struct ReplayPredWrite
{
    std::uint64_t seq;
    std::uint8_t reg;
    bool value;
    /** False for a conservative-tracking noop entry (occupies the
     *  register without architecturally writing). */
    bool writes;

    bool operator==(const ReplayPredWrite &) const = default;
};

/** The define-kernel outputs for one exact (range, config, entry
 *  state); see the file comment. */
struct ReplaySchedule
{
    /** @name Key - every field must match for reuse
     *  @{ */
    /** Packed configuration the define kernel reads: cfg0 =
     *  availDelay | pguDelay << 32; cfg1 = useSfpf | usePgu << 1 |
     *  conservativeDefTracking << 2 | pguSource << 3 | pguValue << 5
     *  | pguIncludePSet << 7. */
    std::uint64_t cfg0 = 0;
    std::uint64_t cfg1 = 0;
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    /** Predicate file entry state: visible[] packed one bit per
     *  register, and the pending queue in FIFO order. */
    std::uint64_t preVisibleBits = 0;
    std::vector<ReplayPredWrite> prePredQueue;
    /** The PGU's entry queue is the first prePguLen entries of
     *  pguBits (the stream starts with the carried queue). */
    std::uint64_t prePguLen = 0;
    /** @} */

    /** @name Payload
     *  @{ */
    /** Per conditional branch, in order: bit0 = guard known at fetch,
     *  bit1 = guard value. Empty unless SFPF is armed. */
    std::vector<std::uint8_t> guard;
    /** The full PGU drain stream (carried queue + batch bits), packed
     *  seq << 1 | bit. Empty unless the PGU is armed. */
    std::vector<std::uint64_t> pguBits;
    /** Cumulative pguBits cursor after the drain preceding branch b
     *  (nBranches entries) plus one final entry for the batch-end
     *  drain - so branch b consumes entries [drainTargets[b-1],
     *  drainTargets[b]). Lets the replay loop skip the per-entry
     *  ripeness scan entirely. */
    std::vector<std::uint32_t> drainTargets;
    /** drainWords[i] holds the last <= 64 drained bits as of
     *  drainTargets[i], newest in bit 0 - the k new bits of a drain
     *  point are its low k bits, fed to injectHistoryBits() in one
     *  shift when k <= 64 (larger drains fall back to the per-entry
     *  stream, which is always kept). */
    std::vector<std::uint64_t> drainWords;
    /** Predicate file exit state (what commit() left). */
    std::uint64_t postVisibleBits = 0;
    std::vector<ReplayPredWrite> postPredQueue;
    /** Branch count of the range - cross-checked against the replay's
     *  own class scan before reuse. */
    std::uint64_t nBranches = 0;
    /** @} */
};

/** Mutex-guarded schedule store, one per DecodedTrace. */
class ReplayScheduleCache
{
  public:
    /** Return the schedule matching every key field, or null. */
    std::shared_ptr<const ReplaySchedule>
    find(std::uint64_t cfg0, std::uint64_t cfg1, std::uint64_t first,
         std::uint64_t count, std::uint64_t preVisibleBits,
         const std::vector<ReplayPredWrite> &prePredQueue,
         const std::vector<std::uint64_t> &prePguQueue)
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &s : entries) {
            if (s->cfg0 != cfg0 || s->cfg1 != cfg1 ||
                s->first != first || s->count != count ||
                s->preVisibleBits != preVisibleBits ||
                s->prePredQueue != prePredQueue ||
                s->prePguLen != prePguQueue.size())
                continue;
            if (!std::equal(prePguQueue.begin(), prePguQueue.end(),
                            s->pguBits.begin()))
                continue;
            return s;
        }
        return nullptr;
    }

    /** Publish a schedule; oldest entry is dropped at capacity (the
     *  cap only matters to irregular chunkings like the fuzzer's -
     *  a bench or sweep reuses a handful of keys). */
    void
    insert(std::shared_ptr<const ReplaySchedule> s)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (entries.size() >= kMaxEntries)
            entries.erase(entries.begin());
        entries.push_back(std::move(s));
    }

    static constexpr std::size_t kMaxEntries = 64;

  private:
    std::mutex mu;
    std::vector<std::shared_ptr<const ReplaySchedule>> entries;
};

} // namespace pabp

#endif // PABP_SIM_REPLAY_SCHEDULE_HH
