#include "sim/emulator.hh"

#include <limits>

#include "util/logging.hh"

namespace pabp {

Emulator::Emulator(const Program &program, EmuConfig config)
    : prog(program), cfg(config), archState(config.memWords)
{
    pabp_assert(!prog.insts.empty());
}

void
Emulator::recordPredWrite(DynInst &out, unsigned reg, bool value)
{
    archState.writePred(reg, value);
    if (reg == 0)
        return; // architecturally discarded; invisible to consumers
    pabp_assert(out.numPredWrites < 2);
    out.predWrites[out.numPredWrites++] =
        DynInst::PredWrite{static_cast<std::uint8_t>(reg), value};
}

void
Emulator::executeCmp(const Inst &inst, bool guard, DynInst &out)
{
    std::int64_t a = archState.readGpr(inst.src1);
    std::int64_t b = inst.hasImm ? inst.imm : archState.readGpr(inst.src2);
    bool rel = evalRel(inst.crel, a, b);
    out.cmpRel = rel;

    switch (inst.ctype) {
      case CmpType::Normal:
        if (guard) {
            recordPredWrite(out, inst.pdst1, rel);
            recordPredWrite(out, inst.pdst2, !rel);
        }
        break;
      case CmpType::Unc:
        if (guard) {
            recordPredWrite(out, inst.pdst1, rel);
            recordPredWrite(out, inst.pdst2, !rel);
        } else {
            recordPredWrite(out, inst.pdst1, false);
            recordPredWrite(out, inst.pdst2, false);
        }
        break;
      case CmpType::And:
        if (guard && !rel) {
            recordPredWrite(out, inst.pdst1, false);
            recordPredWrite(out, inst.pdst2, false);
        }
        break;
      case CmpType::Or:
        if (guard && rel) {
            recordPredWrite(out, inst.pdst1, true);
            recordPredWrite(out, inst.pdst2, true);
        }
        break;
      case CmpType::OrAndcm:
        if (guard && rel) {
            recordPredWrite(out, inst.pdst1, true);
            recordPredWrite(out, inst.pdst2, false);
        }
        break;
      case CmpType::AndOrcm:
        if (guard && !rel) {
            recordPredWrite(out, inst.pdst1, false);
            recordPredWrite(out, inst.pdst2, true);
        }
        break;
    }
}

bool
Emulator::step(DynInst &out)
{
    if (halted())
        return false;
    if (cfg.maxInsts && executed >= cfg.maxInsts) {
        fuse = true;
        return false;
    }

    pabp_assert(archState.pc < prog.insts.size());
    const Inst &inst = prog.insts[archState.pc];

    out = DynInst{};
    out.seq = executed;
    out.pc = archState.pc;
    out.inst = &inst;
    out.nextPc = archState.pc + 1;

    bool guard = archState.readPred(inst.qp);
    out.guard = guard;

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        archState.halted = true;
        out.nextPc = archState.pc;
        break;

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Mov: {
        if (!guard)
            break;
        std::int64_t a = archState.readGpr(inst.src1);
        std::int64_t b =
            inst.hasImm ? inst.imm : archState.readGpr(inst.src2);
        std::int64_t result = 0;
        // Guest integer arithmetic wraps (two's complement); compute
        // in unsigned to keep host-side signed overflow out of it.
        auto ua = static_cast<std::uint64_t>(a);
        auto ub = static_cast<std::uint64_t>(b);
        switch (inst.op) {
          case Opcode::Add:
            result = static_cast<std::int64_t>(ua + ub);
            break;
          case Opcode::Sub:
            result = static_cast<std::int64_t>(ua - ub);
            break;
          case Opcode::Mul:
            result = static_cast<std::int64_t>(ua * ub);
            break;
          case Opcode::Div:
            // INT64_MIN / -1 also traps on real hardware; define it
            // as wrapping to INT64_MIN like the other ops.
            if (b == 0)
                result = 0;
            else if (a == std::numeric_limits<std::int64_t>::min() &&
                     b == -1)
                result = a;
            else
                result = a / b;
            break;
          case Opcode::And: result = a & b; break;
          case Opcode::Or: result = a | b; break;
          case Opcode::Xor: result = a ^ b; break;
          case Opcode::Shl:
            result = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) << (b & 63));
            break;
          case Opcode::Shr:
            result = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) >> (b & 63));
            break;
          case Opcode::Mov: result = inst.hasImm ? inst.imm : a; break;
          default: pabp_panic("unreachable");
        }
        archState.writeGpr(inst.dst, result);
        break;
      }

      case Opcode::Cmp:
        executeCmp(inst, guard, out);
        break;

      case Opcode::PSet:
        if (guard)
            recordPredWrite(out, inst.pdst1, (inst.imm & 1) != 0);
        break;

      case Opcode::Load:
        out.isMem = true;
        out.effAddr = archState.readGpr(inst.src1) + inst.imm;
        if (guard)
            archState.writeGpr(inst.dst, archState.readMem(out.effAddr));
        break;

      case Opcode::Store:
        out.isMem = true;
        out.effAddr = archState.readGpr(inst.src1) + inst.imm;
        if (guard)
            archState.writeMem(out.effAddr, archState.readGpr(inst.src2));
        break;

      case Opcode::Br:
        out.isControl = true;
        out.taken = guard;
        if (guard)
            out.nextPc = inst.target;
        break;

      case Opcode::Call:
        out.isControl = true;
        out.taken = guard;
        if (guard) {
            archState.callStack.push_back(archState.pc + 1);
            out.nextPc = inst.target;
        }
        break;

      case Opcode::Ret:
        out.isControl = true;
        out.taken = guard;
        if (guard) {
            if (archState.callStack.empty()) {
                archState.halted = true;
                out.taken = false;
                out.nextPc = archState.pc;
            } else {
                out.nextPc = archState.callStack.back();
                archState.callStack.pop_back();
            }
        }
        break;

      default:
        pabp_panic("bad opcode in emulator");
    }

    archState.pc = out.nextPc;
    ++executed;
    return true;
}

void
Emulator::run(std::uint64_t max_insts)
{
    DynInst record;
    for (std::uint64_t i = 0; i < max_insts; ++i) {
        if (!step(record))
            return;
    }
}


void
Emulator::saveState(StateSink &sink) const
{
    sink.writeU64(prog.size());
    sink.writeU64(executed);
    sink.writeBool(fuse);
    archState.saveState(sink);
}

Status
Emulator::loadState(StateSource &src)
{
    std::uint64_t prog_size = 0;
    PABP_TRY(src.readPod(prog_size));
    if (prog_size != prog.size())
        return Status(StatusCode::InvalidArgument,
                      "checkpoint program has " +
                          std::to_string(prog_size) +
                          " instructions, this emulator's has " +
                          std::to_string(prog.size()));
    PABP_TRY(src.readPod(executed));
    PABP_TRY(src.readBool(fuse));
    return archState.loadState(src);
}

} // namespace pabp
