/**
 * @file
 * Functional emulator for the predicated ISA. Executes a Program and
 * produces a stream of DynInst records - the dynamic trace consumed by
 * the branch-prediction harnesses and the cycle-level pipeline.
 */

#ifndef PABP_SIM_EMULATOR_HH
#define PABP_SIM_EMULATOR_HH

#include <cstdint>

#include "isa/program.hh"
#include "sim/arch_state.hh"

namespace pabp {

/**
 * One dynamically executed instruction. Everything a timing model or
 * predictor harness needs: the static instruction, its guard value at
 * execute, control-flow resolution and predicate writes.
 */
struct DynInst
{
    std::uint64_t seq = 0;          ///< dynamic sequence number
    std::uint32_t pc = 0;
    const Inst *inst = nullptr;

    bool guard = true;              ///< qp value at execute

    bool isControl = false;         ///< Br/Call/Ret
    bool taken = false;             ///< control transfer happened
    std::uint32_t nextPc = 0;

    /** Relation result of a Cmp (valid only for Cmp ops). */
    bool cmpRel = false;

    /** Predicate register writes that architecturally happened
     *  (excludes discarded writes to p0). */
    struct PredWrite
    {
        std::uint8_t reg;
        bool value;
    };
    std::uint8_t numPredWrites = 0;
    PredWrite predWrites[2];

    bool isMem = false;
    std::int64_t effAddr = 0;
};

/** Emulator configuration. */
struct EmuConfig
{
    std::size_t memWords = 1u << 20;
    /** Safety net against runaway programs; 0 disables. */
    std::uint64_t maxInsts = 0;
};

/**
 * Straightforward interpret-one-instruction-at-a-time emulator. This
 * is the repo's golden model: the pipeline and the predictors are both
 * driven by (and checked against) its trace.
 */
class Emulator
{
  public:
    Emulator(const Program &program, EmuConfig config = EmuConfig{});

    /**
     * Execute one instruction and fill @p out. Returns false without
     * executing when the machine has halted (or the maxInsts fuse
     * blew; see fuseBlown()).
     */
    bool step(DynInst &out);

    /** Run up to @p max_insts instructions, discarding the records. */
    void run(std::uint64_t max_insts);

    bool halted() const { return archState.halted || fuse; }
    bool fuseBlown() const { return fuse; }
    std::uint64_t instsExecuted() const { return executed; }

    ArchState &state() { return archState; }
    const ArchState &state() const { return archState; }
    const Program &program() const { return prog; }

    /**
     * @name Checkpointing
     * Position (instructions executed, fuse) plus the architectural
     * state. The program itself is not serialised: a resume
     * reconstructs it (workload compilation is deterministic) and
     * loadState() cross-checks the instruction count.
     * @{
     */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);
    /** @} */

  private:
    const Program &prog;
    EmuConfig cfg;
    ArchState archState;
    std::uint64_t executed = 0;
    bool fuse = false;

    void recordPredWrite(DynInst &out, unsigned reg, bool value);
    void executeCmp(const Inst &inst, bool guard, DynInst &out);
};

} // namespace pabp

#endif // PABP_SIM_EMULATOR_HH
