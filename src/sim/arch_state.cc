#include "sim/arch_state.hh"

namespace pabp {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // anonymous namespace

ArchState::ArchState(std::size_t mem_words)
    : mem(roundUpPow2(mem_words ? mem_words : 1), 0)
{
    pred[0] = true;
}

void
ArchState::resetRegs()
{
    gpr.fill(0);
    pred.fill(false);
    pred[0] = true;
    pc = 0;
    halted = false;
    callStack.clear();
}

bool
ArchState::sameArchOutcome(const ArchState &other) const
{
    return gpr == other.gpr && pred[0] == other.pred[0] &&
        mem == other.mem;
}

} // namespace pabp
