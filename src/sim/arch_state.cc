#include "sim/arch_state.hh"

namespace pabp {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // anonymous namespace

ArchState::ArchState(std::size_t mem_words)
    : mem(roundUpPow2(mem_words ? mem_words : 1), 0)
{
    pred[0] = true;
}

void
ArchState::resetRegs()
{
    gpr.fill(0);
    pred.fill(false);
    pred[0] = true;
    pc = 0;
    halted = false;
    callStack.clear();
}

bool
ArchState::sameArchOutcome(const ArchState &other) const
{
    return gpr == other.gpr && pred[0] == other.pred[0] &&
        mem == other.mem;
}

void
ArchState::saveState(StateSink &sink) const
{
    sink.writeU32(pc);
    sink.writeBool(halted);
    sink.writeU64(callStack.size());
    sink.writeBytes(callStack.data(),
                    callStack.size() * sizeof(std::uint32_t));
    for (std::int64_t r : gpr)
        sink.writeI64(r);
    for (bool p : pred)
        sink.writeBool(p);
    sink.writeU64(mem.size());
    sink.writeBytes(mem.data(), mem.size() * sizeof(std::int64_t));
}

Status
ArchState::loadState(StateSource &src)
{
    PABP_TRY(src.readPod(pc));
    PABP_TRY(src.readBool(halted));
    std::vector<std::uint32_t> stack;
    PABP_TRY(src.readPodVectorBounded(stack, 1u << 24));
    callStack = std::move(stack);
    for (std::int64_t &r : gpr)
        PABP_TRY(src.readPod(r));
    for (std::size_t i = 0; i < pred.size(); ++i) {
        bool value = false;
        PABP_TRY(src.readBool(value));
        pred[i] = value;
    }
    std::uint64_t mem_words = 0;
    PABP_TRY(src.readPod(mem_words));
    if (mem_words != mem.size())
        return Status(StatusCode::InvalidArgument,
                      "checkpoint memory size " +
                          std::to_string(mem_words) +
                          " != configured " +
                          std::to_string(mem.size()));
    return src.readBytes(mem.data(),
                         mem.size() * sizeof(std::int64_t));
}

} // namespace pabp
