/**
 * @file
 * Deterministic interleaving schedules for multi-context replay.
 *
 * A shared-predictor interference experiment (bench E21) replays N
 * independent trace contexts through one set of predictor tables.
 * The schedule decides which context runs next and for how many
 * events; it is a pure function of its configuration (kind, quantum,
 * seed), so the same configuration always produces the same slice
 * stream - the determinism the multi-context fuzz oracle pins at any
 * --jobs count.
 */

#ifndef PABP_SIM_CONTEXT_SCHEDULE_HH
#define PABP_SIM_CONTEXT_SCHEDULE_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace pabp {

/** How contexts interleave. */
enum class ScheduleKind : std::uint8_t
{
    /** Fixed quantum, contexts in strict rotation - the OS-timeslice
     *  picture, maximum regularity. */
    RoundRobin = 0,
    /** Seeded random context choice with burst lengths drawn
     *  uniformly from [1, 2*quantum] - same mean occupancy as
     *  round-robin, none of the regularity. */
    Bursty = 1,
};

/** Parse "rr"/"round-robin" or "bursty"; anything else is a typed
 *  InvalidArgument (the CLI surfaces it as a usage error). */
Expected<ScheduleKind> parseScheduleKind(const std::string &name);

/** Canonical name, inverse of parseScheduleKind(). */
const char *scheduleKindName(ScheduleKind kind);

/** Slice-stream configuration. */
struct ContextScheduleConfig
{
    unsigned contexts = 1;
    ScheduleKind kind = ScheduleKind::RoundRobin;
    /** Events per round-robin slice; burst midpoint for Bursty. */
    std::uint64_t quantum = 1024;
    /** Bursty draw seed; ignored by RoundRobin. */
    std::uint64_t seed = 1;
};

/** Deterministic slice generator. One instance per run. */
class ContextSchedule
{
  public:
    struct Slice
    {
        unsigned context = 0;
        std::uint64_t length = 0;
    };

    explicit ContextSchedule(const ContextScheduleConfig &config);

    /** The next slice. The stream is infinite; the replayer skips
     *  slices granted to exhausted contexts. */
    Slice next();

  private:
    ContextScheduleConfig cfg;
    unsigned rotor = 0;      ///< round-robin cursor
    std::uint64_t rngState;  ///< bursty xorshift64 state

    std::uint64_t rngNext();
};

} // namespace pabp

#endif // PABP_SIM_CONTEXT_SCHEDULE_HH
