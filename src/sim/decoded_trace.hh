/**
 * @file
 * Structure-of-arrays form of a RecordedTrace, pre-decoded for the
 * hot replay loop (PredictionEngine::processBatch).
 *
 * RecordedTrace::materialise() re-resolves the static instruction
 * (a bounds-checked map lookup), re-unpacks the event bitfields and
 * fills a full DynInst for EVERY replayed instruction. A DecodedTrace
 * does that work exactly once at build time: each per-event lane the
 * engine's batch loop touches (pc, opcode class, guard/taken flags,
 * predicate-write payload) is a flat contiguous array indexed by
 * sequence number, so the inner loop is a handful of indexed loads
 * with no per-step DynInst construction. The pc lane doubles as the
 * static-instruction index (a trace pc IS an index into the owned
 * program), so the old pre-resolved `const Inst *` lane is gone -
 * `inst(i)` is one add off the pc the loop already loaded, and the
 * lanes are pure POD, which is what makes the zero-copy file mapping
 * below possible.
 *
 * The lanes live behind raw const pointers into one of two backings:
 *
 *  - build(): decodes a RecordedTrace into owned vectors (the
 *    in-memory path every existing caller uses), or
 *  - mapDecodedTraceFile(): points the lanes straight into a
 *    read-only mmap of a PABPDTF1 file written by
 *    saveDecodedTraceFile(). Opening cost is header + program
 *    validation plus one bounds scan of the pc lane - it no longer
 *    scales with re-decoding the event stream, so cold-starting a
 *    sweep over a huge trace is cheap (docs/PERF.md).
 *
 * A built or mapped DecodedTrace is immutable and safe to share
 * READ-ONLY across threads - the sweep runner caches one per
 * (workload, measurement seed, budget) and replays every matching
 * cell against it, exactly like the compiled-program cache
 * (docs/PARALLEL.md, docs/PERF.md). It owns a copy of the program so
 * `inst(i)` can never dangle; copying is deleted while moving is
 * allowed (vector/mapping moves keep the underlying buffers, so the
 * lane pointers stay valid).
 *
 * PABPDTF1 layout (little-endian):
 *   | magic[8]="PABPDTF1" | u32 version=1 | u64 numInsts
 *   | u64 numEvents | u32 laneCrc | u32 headerCrc
 *   | program: numInsts x 20-byte records | u32 progCrc
 *   | pad to 8 | pcs u32[n] | nextPcs u32[n]
 *   | cls u8[n] | flags u8[n] | predReg0 u8[n] | predReg1 u8[n]
 *   | predVal u8[n]
 * headerCrc covers the 32 bytes before it; progCrc the program
 * records; laneCrc the whole lane region. Every malformed-input path
 * is a typed Status (BadMagic / VersionMismatch / ChecksumMismatch /
 * Truncated / Corrupt), never a crash.
 */

#ifndef PABP_SIM_DECODED_TRACE_HH
#define PABP_SIM_DECODED_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hh"
#include "sim/replay_schedule.hh"
#include "sim/trace_io.hh"
#include "util/mmap_file.hh"

namespace pabp {

/** A RecordedTrace unpacked into per-field lanes (seq = index). */
struct DecodedTrace
{
    /**
     * How PredictionEngine::process() would dispatch the event.
     * The classes are mutually exclusive by construction: Br/Call/Ret
     * never write predicates and Cmp/PSet are never control.
     * The numeric values are pinned by the PABPDTF1 format and the
     * simd class-scan kernels (util/simd.hh).
     */
    enum class Class : std::uint8_t
    {
        Other = 0,     ///< no predictor interaction
        CondBranch,    ///< Br with a qualifying predicate
        UncondControl, ///< unguarded Br, Call, Ret
        PredDefine,    ///< Cmp or PSet (writes predicates)
    };

    /** Owned program copy; pcs index into it. */
    Program prog;

    /** @name Per-event lanes, all of size() entries
     * Read-only views into either the owned vectors (build()) or the
     * file mapping (mapDecodedTraceFile()).
     *  @{ */
    const std::uint32_t *pcs = nullptr;
    const std::uint8_t *cls = nullptr; ///< a Class value
    /** bit0 guard, bit1 taken, bits 2-3 numPredWrites - the exact
     *  RecordedTrace::Event::flags packing. */
    const std::uint8_t *flags = nullptr;
    const std::uint8_t *predReg0 = nullptr;
    const std::uint8_t *predReg1 = nullptr;
    /** bit0/bit1 = write values, bit2 cmpRel (Event::predVal). */
    const std::uint8_t *predVal = nullptr;
    const std::uint32_t *nextPcs = nullptr;
    /** @} */

    DecodedTrace() = default;
    DecodedTrace(DecodedTrace &&) = default;
    DecodedTrace &operator=(DecodedTrace &&) = default;
    DecodedTrace(const DecodedTrace &) = delete;
    DecodedTrace &operator=(const DecodedTrace &) = delete;

    std::size_t size() const { return count; }

    /** True when the lanes point into a file mapping. */
    bool isMapped() const { return mapping != nullptr; }

    bool guard(std::size_t i) const { return flags[i] & 1; }
    bool taken(std::size_t i) const { return (flags[i] >> 1) & 1; }
    unsigned
    numPredWrites(std::size_t i) const
    {
        return (flags[i] >> 2) & 3;
    }

    /** The static instruction of event @p i: the pc lane is the
     *  instruction index, pre-validated against the program at
     *  build/map time, so this is a single indexed load. */
    const Inst &
    inst(std::size_t i) const
    {
        return prog.insts[pcs[i]];
    }

    /**
     * Reconstitute the full DynInst for event @p i - field-for-field
     * what RecordedTrace::materialise(i) returns. The reference-path
     * comparisons and lane-packing tests use this; the batch loop
     * itself reads the lanes directly.
     */
    DynInst
    materialise(std::size_t i) const
    {
        const Inst &in = inst(i);

        DynInst dyn;
        dyn.seq = i;
        dyn.pc = pcs[i];
        dyn.inst = &in;
        dyn.guard = guard(i);
        dyn.taken = taken(i);
        dyn.isControl = in.isControl();
        dyn.nextPc = nextPcs[i];
        dyn.numPredWrites =
            static_cast<std::uint8_t>(numPredWrites(i));
        const std::uint8_t regs[2] = {predReg0[i], predReg1[i]};
        for (unsigned w = 0; w < dyn.numPredWrites; ++w) {
            dyn.predWrites[w].reg = regs[w];
            dyn.predWrites[w].value = (predVal[i] >> w) & 1;
        }
        dyn.cmpRel = (predVal[i] >> 2) & 1;
        dyn.isMem =
            in.op == Opcode::Load || in.op == Opcode::Store;
        return dyn;
    }

    /** Decode @p trace into owned in-memory lanes. */
    static DecodedTrace build(const RecordedTrace &trace);

    /** Owned-vector backing for the build() path. */
    struct Lanes
    {
        std::vector<std::uint32_t> pcs;
        std::vector<std::uint8_t> cls;
        std::vector<std::uint8_t> flags;
        std::vector<std::uint8_t> predReg0;
        std::vector<std::uint8_t> predReg1;
        std::vector<std::uint8_t> predVal;
        std::vector<std::uint32_t> nextPcs;
    };

    std::size_t count = 0;
    std::unique_ptr<Lanes> store;      ///< build() backing
    std::unique_ptr<MmapFile> mapping; ///< mapped-file backing

    /**
     * Predictor-independent replay schedules derived from this trace
     * (sim/replay_schedule.hh), shared by every engine that batch
     * replays it - a sweep's repeated replays skip the define kernel
     * after the first pass. Created by build()/mapDecodedTraceFile();
     * a default-constructed trace has none and the engine simply
     * never caches.
     */
    std::shared_ptr<ReplayScheduleCache> schedCache;

    /** Re-point the lane views at the owned vectors. */
    void bindStore();
};

/** Knobs for mapDecodedTraceFile(). */
struct DecodedMapOptions
{
    /**
     * Verify the lane CRC and the per-event invariants (class lane
     * consistent with the program, predicate-write registers in
     * range). Costs one sequential pass over the lanes; disable only
     * for trusted, locally-written files. The pc-lane bounds scan
     * ALWAYS runs - the batch loop indexes the program with lane pcs
     * unchecked, so out-of-range pcs must be impossible regardless of
     * this knob.
     */
    bool verifyLanes = true;
};

/** Serialise @p trace as a PABPDTF1 file (write-then-rename). */
Status saveDecodedTraceFile(const DecodedTrace &trace,
                            const std::string &path);

/**
 * Map a PABPDTF1 file zero-copy: the program section is deserialised
 * (it is small and the Inst layout is not the disk layout), the event
 * lanes stay in the read-only mapping. Torn, truncated or corrupt
 * files yield typed errors; nothing aborts.
 */
Expected<DecodedTrace> mapDecodedTraceFile(
    const std::string &path, const DecodedMapOptions &opts = {});

} // namespace pabp

#endif // PABP_SIM_DECODED_TRACE_HH
