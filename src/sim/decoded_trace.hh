/**
 * @file
 * Structure-of-arrays form of a RecordedTrace, pre-decoded for the
 * hot replay loop (PredictionEngine::processBatch).
 *
 * RecordedTrace::materialise() re-resolves the static instruction
 * (a bounds-checked map lookup), re-unpacks the event bitfields and
 * fills a full DynInst for EVERY replayed instruction. A DecodedTrace
 * does that work exactly once at build time: each per-event lane the
 * engine's batch loop touches (pc, pre-resolved `const Inst *`,
 * opcode class, guard/taken flags, predicate-write payload) is a flat
 * contiguous array indexed by sequence number, so the inner loop is
 * a handful of indexed loads with no per-step DynInst construction.
 *
 * A built DecodedTrace is immutable and safe to share READ-ONLY
 * across threads - the sweep runner caches one per (workload,
 * measurement seed, budget) and replays every matching cell against
 * it, exactly like the compiled-program cache (docs/PARALLEL.md,
 * docs/PERF.md). It owns a copy of the program so the `Inst`
 * pointers can never dangle; copying is deleted (a copy would alias
 * the source's instructions) while moving is allowed (vector moves
 * keep heap buffers, so the pointers stay valid).
 */

#ifndef PABP_SIM_DECODED_TRACE_HH
#define PABP_SIM_DECODED_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sim/trace_io.hh"

namespace pabp {

/** A RecordedTrace unpacked into per-field lanes (seq = index). */
struct DecodedTrace
{
    /**
     * How PredictionEngine::process() would dispatch the event.
     * The classes are mutually exclusive by construction: Br/Call/Ret
     * never write predicates and Cmp/PSet are never control.
     */
    enum class Class : std::uint8_t
    {
        Other = 0,     ///< no predictor interaction
        CondBranch,    ///< Br with a qualifying predicate
        UncondControl, ///< unguarded Br, Call, Ret
        PredDefine,    ///< Cmp or PSet (writes predicates)
    };

    /** Owned program copy; the `insts` lane points into it. */
    Program prog;

    /** @name Per-event lanes, all of size() entries
     *  @{ */
    std::vector<std::uint32_t> pcs;
    std::vector<const Inst *> insts; ///< pre-resolved static inst
    std::vector<std::uint8_t> cls;   ///< a Class value
    /** bit0 guard, bit1 taken, bits 2-3 numPredWrites - the exact
     *  RecordedTrace::Event::flags packing. */
    std::vector<std::uint8_t> flags;
    std::vector<std::uint8_t> predReg0;
    std::vector<std::uint8_t> predReg1;
    /** bit0/bit1 = write values, bit2 cmpRel (Event::predVal). */
    std::vector<std::uint8_t> predVal;
    std::vector<std::uint32_t> nextPcs;
    /** @} */

    DecodedTrace() = default;
    DecodedTrace(DecodedTrace &&) = default;
    DecodedTrace &operator=(DecodedTrace &&) = default;
    DecodedTrace(const DecodedTrace &) = delete;
    DecodedTrace &operator=(const DecodedTrace &) = delete;

    std::size_t size() const { return pcs.size(); }

    bool guard(std::size_t i) const { return flags[i] & 1; }
    bool taken(std::size_t i) const { return (flags[i] >> 1) & 1; }
    unsigned
    numPredWrites(std::size_t i) const
    {
        return (flags[i] >> 2) & 3;
    }

    /**
     * Reconstitute the full DynInst for event @p i - field-for-field
     * what RecordedTrace::materialise(i) returns. The batch loop uses
     * this for predicate defines (a fifth to a third of a typical
     * if-converted stream, hence inline); it also lets tests pin
     * lane-vs-event equivalence directly.
     */
    DynInst
    materialise(std::size_t i) const
    {
        const Inst &inst = *insts[i];

        DynInst dyn;
        dyn.seq = i;
        dyn.pc = pcs[i];
        dyn.inst = &inst;
        dyn.guard = guard(i);
        dyn.taken = taken(i);
        dyn.isControl = inst.isControl();
        dyn.nextPc = nextPcs[i];
        dyn.numPredWrites =
            static_cast<std::uint8_t>(numPredWrites(i));
        const std::uint8_t regs[2] = {predReg0[i], predReg1[i]};
        for (unsigned w = 0; w < dyn.numPredWrites; ++w) {
            dyn.predWrites[w].reg = regs[w];
            dyn.predWrites[w].value = (predVal[i] >> w) & 1;
        }
        dyn.cmpRel = (predVal[i] >> 2) & 1;
        dyn.isMem =
            inst.op == Opcode::Load || inst.op == Opcode::Store;
        return dyn;
    }

    /** Decode @p trace into lanes (the only way to build one). */
    static DecodedTrace build(const RecordedTrace &trace);
};

} // namespace pabp

#endif // PABP_SIM_DECODED_TRACE_HH
