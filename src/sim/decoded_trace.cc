#include "sim/decoded_trace.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "util/crc32.hh"

namespace pabp {

namespace {

constexpr char decodedMagic[8] = {'P', 'A', 'B', 'P', 'D', 'T', 'F', '1'};
constexpr std::uint32_t decodedVersion = 1;

/** Fixed-size header: magic + version + numInsts + numEvents +
 *  laneCrc + headerCrc. */
constexpr std::size_t headerBytes = 36;
/** How much of the header the headerCrc covers (everything before
 *  the crc field itself). */
constexpr std::size_t headerCrcSpan = 32;

/** Bytes of lane data per event: two u32 lanes + five byte lanes. */
constexpr std::size_t laneBytesPerEvent = 13;

/** Same allocation sanity bound the trace reader applies. */
constexpr std::uint64_t maxDecodedInsts = 1u << 26;

std::size_t
alignUp8(std::size_t v)
{
    return (v + 7) & ~static_cast<std::size_t>(7);
}

/** Offset of the 8-aligned lane region for a given program size. */
std::size_t
laneRegionOffset(std::uint64_t numInsts)
{
    return alignUp8(headerBytes +
                    static_cast<std::size_t>(numInsts) * instRecordSize +
                    4 /* progCrc */);
}

DecodedTrace::Class
classify(const Inst &inst)
{
    using Class = DecodedTrace::Class;
    if (inst.op == Opcode::Br)
        return inst.qp ? Class::CondBranch : Class::UncondControl;
    if (inst.op == Opcode::Call || inst.op == Opcode::Ret)
        return Class::UncondControl;
    if (inst.writesPredicate())
        return Class::PredDefine;
    return Class::Other;
}

} // anonymous namespace

void
DecodedTrace::bindStore()
{
    pcs = store->pcs.data();
    cls = store->cls.data();
    flags = store->flags.data();
    predReg0 = store->predReg0.data();
    predReg1 = store->predReg1.data();
    predVal = store->predVal.data();
    nextPcs = store->nextPcs.data();
    count = store->pcs.size();
}

DecodedTrace
DecodedTrace::build(const RecordedTrace &trace)
{
    DecodedTrace out;
    out.prog = trace.prog;
    out.store = std::make_unique<Lanes>();
    Lanes &lanes = *out.store;

    const std::size_t n = trace.events.size();
    lanes.pcs.reserve(n);
    lanes.cls.reserve(n);
    lanes.flags.reserve(n);
    lanes.predReg0.reserve(n);
    lanes.predReg1.reserve(n);
    lanes.predVal.reserve(n);
    lanes.nextPcs.reserve(n);

    for (const RecordedTrace::Event &event : trace.events) {
        // The one bounds-checked instruction lookup the reference
        // loop pays per step, hoisted to build time.
        const Inst &inst = out.prog.insts.at(event.pc);

        lanes.pcs.push_back(event.pc);
        lanes.cls.push_back(static_cast<std::uint8_t>(classify(inst)));
        lanes.flags.push_back(event.flags);
        lanes.predReg0.push_back(event.predReg[0]);
        lanes.predReg1.push_back(event.predReg[1]);
        lanes.predVal.push_back(event.predVal);
        lanes.nextPcs.push_back(event.nextPc);
    }
    out.bindStore();
    out.schedCache = std::make_shared<ReplayScheduleCache>();
    return out;
}

Status
saveDecodedTraceFile(const DecodedTrace &trace, const std::string &path)
{
    const std::uint64_t numInsts = trace.prog.insts.size();
    const std::uint64_t numEvents = trace.size();

    // Program section + its CRC.
    std::vector<unsigned char> progBytes(
        static_cast<std::size_t>(numInsts) * instRecordSize);
    for (std::uint64_t i = 0; i < numInsts; ++i)
        packInstRecord(trace.prog.insts[i],
                       progBytes.data() + i * instRecordSize);
    const std::uint32_t progCrc =
        crc32(progBytes.data(), progBytes.size());

    // Lane region, in file order, CRC'd as one span.
    Crc32 laneCrcAcc;
    laneCrcAcc.update(trace.pcs, numEvents * 4);
    laneCrcAcc.update(trace.nextPcs, numEvents * 4);
    laneCrcAcc.update(trace.cls, numEvents);
    laneCrcAcc.update(trace.flags, numEvents);
    laneCrcAcc.update(trace.predReg0, numEvents);
    laneCrcAcc.update(trace.predReg1, numEvents);
    laneCrcAcc.update(trace.predVal, numEvents);
    const std::uint32_t laneCrc = laneCrcAcc.value();

    unsigned char header[headerBytes];
    std::memcpy(header, decodedMagic, 8);
    std::memcpy(header + 8, &decodedVersion, 4);
    std::memcpy(header + 12, &numInsts, 8);
    std::memcpy(header + 20, &numEvents, 8);
    std::memcpy(header + 28, &laneCrc, 4);
    const std::uint32_t headerCrc = crc32(header, headerCrcSpan);
    std::memcpy(header + 32, &headerCrc, 4);

    // Write-then-rename so a crash can never leave a torn file at
    // the final path (readers either see the old file or the new).
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return Status(StatusCode::IoError, "cannot open " + tmp);

        os.write(reinterpret_cast<const char *>(header), headerBytes);
        os.write(reinterpret_cast<const char *>(progBytes.data()),
                 static_cast<std::streamsize>(progBytes.size()));
        os.write(reinterpret_cast<const char *>(&progCrc), 4);

        const std::size_t laneOff = laneRegionOffset(numInsts);
        const std::size_t written =
            headerBytes + progBytes.size() + 4;
        const char pad[8] = {};
        os.write(pad, static_cast<std::streamsize>(laneOff - written));

        os.write(reinterpret_cast<const char *>(trace.pcs),
                 static_cast<std::streamsize>(numEvents * 4));
        os.write(reinterpret_cast<const char *>(trace.nextPcs),
                 static_cast<std::streamsize>(numEvents * 4));
        os.write(reinterpret_cast<const char *>(trace.cls),
                 static_cast<std::streamsize>(numEvents));
        os.write(reinterpret_cast<const char *>(trace.flags),
                 static_cast<std::streamsize>(numEvents));
        os.write(reinterpret_cast<const char *>(trace.predReg0),
                 static_cast<std::streamsize>(numEvents));
        os.write(reinterpret_cast<const char *>(trace.predReg1),
                 static_cast<std::streamsize>(numEvents));
        os.write(reinterpret_cast<const char *>(trace.predVal),
                 static_cast<std::streamsize>(numEvents));
        os.flush();
        if (!os)
            return Status(StatusCode::IoError,
                          "write failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status(StatusCode::IoError,
                      "cannot rename " + tmp + " to " + path);
    }
    return Status();
}

Expected<DecodedTrace>
mapDecodedTraceFile(const std::string &path, const DecodedMapOptions &opts)
{
    auto mapped = MmapFile::open(path);
    if (!mapped)
        return mapped.status();
    MmapFile file = std::move(mapped.value());

    const unsigned char *base = file.data();
    const std::size_t size = file.size();
    if (size < headerBytes)
        return Status(StatusCode::Truncated,
                      path + ": shorter than a PABPDTF1 header");
    if (std::memcmp(base, decodedMagic, 8) != 0)
        return Status(StatusCode::BadMagic,
                      path + ": not a decoded-trace file");

    std::uint32_t version = 0;
    std::uint64_t numInsts = 0;
    std::uint64_t numEvents = 0;
    std::uint32_t laneCrc = 0;
    std::uint32_t headerCrc = 0;
    std::memcpy(&version, base + 8, 4);
    std::memcpy(&numInsts, base + 12, 8);
    std::memcpy(&numEvents, base + 20, 8);
    std::memcpy(&laneCrc, base + 28, 4);
    std::memcpy(&headerCrc, base + 32, 4);

    if (version != decodedVersion)
        return Status(StatusCode::VersionMismatch,
                      path + ": decoded-trace version " +
                          std::to_string(version) + " unsupported");
    if (crc32(base, headerCrcSpan) != headerCrc)
        return Status(StatusCode::ChecksumMismatch,
                      path + ": header CRC mismatch");

    // A verified header whose counts are absurd is corrupt, and the
    // counts must not overflow the size arithmetic below.
    if (numInsts > maxDecodedInsts ||
        numEvents > std::numeric_limits<std::size_t>::max() /
                        (laneBytesPerEvent + 1))
        return Status(StatusCode::Corrupt,
                      path + ": implausible section sizes");

    const std::size_t laneOff = laneRegionOffset(numInsts);
    const std::size_t expected =
        laneOff + static_cast<std::size_t>(numEvents) * laneBytesPerEvent;
    if (size < expected)
        return Status(StatusCode::Truncated,
                      path + ": file ends inside the lane region");
    if (size > expected)
        return Status(StatusCode::Corrupt,
                      path + ": trailing bytes after the lane region");

    // Program section: CRC, then decode each record.
    const unsigned char *progBase = base + headerBytes;
    const std::size_t progSpan =
        static_cast<std::size_t>(numInsts) * instRecordSize;
    std::uint32_t progCrc = 0;
    std::memcpy(&progCrc, progBase + progSpan, 4);
    if (crc32(progBase, progSpan) != progCrc)
        return Status(StatusCode::ChecksumMismatch,
                      path + ": program CRC mismatch");

    DecodedTrace out;
    out.prog.insts.resize(static_cast<std::size_t>(numInsts));
    for (std::uint64_t i = 0; i < numInsts; ++i) {
        if (!unpackInstRecord(progBase + i * instRecordSize,
                              out.prog.insts[i]))
            return Status(StatusCode::Corrupt,
                          path + ": invalid instruction record " +
                              std::to_string(i));
    }

    const std::size_t n = static_cast<std::size_t>(numEvents);
    const unsigned char *p = base + laneOff;
    out.pcs = reinterpret_cast<const std::uint32_t *>(p);
    out.nextPcs = reinterpret_cast<const std::uint32_t *>(p + n * 4);
    out.cls = p + n * 8;
    out.flags = out.cls + n;
    out.predReg0 = out.flags + n;
    out.predReg1 = out.predReg0 + n;
    out.predVal = out.predReg1 + n;
    out.count = n;

    // Mandatory safety scan: the batch loop indexes the program with
    // lane pcs unchecked, so an out-of-range pc must be rejected here
    // no matter what the options say.
    for (std::size_t i = 0; i < n; ++i) {
        if (out.pcs[i] >= numInsts)
            return Status(StatusCode::Corrupt,
                          path + ": event " + std::to_string(i) +
                              " pc out of range");
    }

    if (opts.verifyLanes) {
        Crc32 crc;
        crc.update(p, n * laneBytesPerEvent);
        if (crc.value() != laneCrc)
            return Status(StatusCode::ChecksumMismatch,
                          path + ": lane CRC mismatch");
        for (std::size_t i = 0; i < n; ++i) {
            const Inst &inst = out.prog.insts[out.pcs[i]];
            if (out.cls[i] != static_cast<std::uint8_t>(classify(inst)))
                return Status(StatusCode::Corrupt,
                              path + ": event " + std::to_string(i) +
                                  " class lane disagrees with program");
            const unsigned writes = out.numPredWrites(i);
            if ((writes >= 1 && out.predReg0[i] >= numPredRegs) ||
                (writes >= 2 && out.predReg1[i] >= numPredRegs))
                return Status(StatusCode::Corrupt,
                              path + ": event " + std::to_string(i) +
                                  " predicate register out of range");
        }
    }

    out.mapping = std::make_unique<MmapFile>(std::move(file));
    out.schedCache = std::make_shared<ReplayScheduleCache>();
    return out;
}

} // namespace pabp
