#include "sim/decoded_trace.hh"

namespace pabp {

DecodedTrace
DecodedTrace::build(const RecordedTrace &trace)
{
    DecodedTrace out;
    out.prog = trace.prog;

    const std::size_t n = trace.events.size();
    out.pcs.reserve(n);
    out.insts.reserve(n);
    out.cls.reserve(n);
    out.flags.reserve(n);
    out.predReg0.reserve(n);
    out.predReg1.reserve(n);
    out.predVal.reserve(n);
    out.nextPcs.reserve(n);

    for (const RecordedTrace::Event &event : trace.events) {
        // The one bounds-checked instruction lookup the reference
        // loop pays per step, hoisted to build time.
        const Inst &inst = out.prog.insts.at(event.pc);

        Class c = Class::Other;
        if (inst.op == Opcode::Br)
            c = inst.qp ? Class::CondBranch : Class::UncondControl;
        else if (inst.op == Opcode::Call || inst.op == Opcode::Ret)
            c = Class::UncondControl;
        else if (inst.writesPredicate())
            c = Class::PredDefine;

        out.pcs.push_back(event.pc);
        out.insts.push_back(&inst);
        out.cls.push_back(static_cast<std::uint8_t>(c));
        out.flags.push_back(event.flags);
        out.predReg0.push_back(event.predReg[0]);
        out.predReg1.push_back(event.predReg[1]);
        out.predVal.push_back(event.predVal);
        out.nextPcs.push_back(event.nextPc);
    }
    return out;
}

} // namespace pabp
