/**
 * @file
 * Runtime-dispatched SIMD kernels for the replay hot path.
 *
 * Two kinds of work in the batched replay loop vectorise cleanly:
 *
 *  1. The perceptron dot-product and training sweep: histBits
 *     independent +/-w accumulations (predict) and saturating +/-1
 *     adjustments (update) over a contiguous int16 weight row - the
 *     textbook SIMD target the ROADMAP names.
 *
 *  2. Class-lane scanning: the decoded trace's `cls` lane is a flat
 *     byte array, and between two predictor-relevant events
 *     (conditional branches, and predicate defines when a predicate
 *     technique is armed) the loop only counts the classes it skips.
 *     A 32-lane compare+movemask scan finds the next interesting
 *     event and popcounts the skipped classes in one step.
 *
 * Every kernel has a scalar implementation and (on x86-64 with
 * PABP_SIMD enabled) an AVX2 implementation that is BYTE-IDENTICAL:
 * the kernels are pure integer arithmetic, reassociated sums of
 * values that cannot overflow, so the result does not depend on the
 * lane width. tests/test_simd.cc pins scalar == AVX2 on randomised
 * inputs, and the fast-vs-reference replay equivalence suite runs the
 * whole engine over both levels.
 *
 * Dispatch is resolved at startup (CPUID), overridable for tests and
 * CI via forceLevel() or the PABP_SIMD environment variable
 * ("scalar" | "avx2"). With the PABP_SIMD CMake option OFF only the
 * scalar kernels are compiled and the dispatcher is a constant.
 */

#ifndef PABP_UTIL_SIMD_HH
#define PABP_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace pabp {
namespace simd {

/** Instruction-set tier a kernel dispatches to. */
enum class Level : std::uint8_t
{
    Scalar = 0,
    Avx2 = 1,
};

/** The tier kernels currently dispatch to. */
Level activeLevel();

/** True when the build contains AVX2 kernels and the CPU has AVX2. */
bool avx2Available();

/**
 * Override dispatch (tests, sanitizer stages, benchmarking the scalar
 * fallback). Forcing an unavailable tier falls back to the best
 * available one; returns the tier actually selected.
 */
Level forceLevel(Level level);

/** Human-readable name of a tier ("scalar", "avx2"). */
const char *levelName(Level level);

/**
 * Perceptron output: w[0] (bias) plus, for each history bit i in
 * [0, n), +w[i + 1] when bit i of @p hist is set else -w[i + 1].
 * Exact: every partial sum fits comfortably in int32 (n <= 63,
 * |w| <= 32767), so lane order cannot change the result.
 */
std::int32_t perceptronDot(const std::int16_t *w, std::uint64_t hist,
                           unsigned n);

/**
 * Perceptron training sweep: saturating-adjust w[0] toward @p taken
 * and each w[i + 1] toward (bit i of @p hist == @p taken), bounded to
 * [@p wmin, @p wmax]. Mirrors PerceptronPredictor::saturatingAdjust
 * lane for lane.
 */
void perceptronTrain(std::int16_t *w, std::uint64_t hist, unsigned n,
                     bool taken, std::int16_t wmax, std::int16_t wmin);

/** What a class-lane scan found. */
struct ScanResult
{
    /** Index of the next interesting event, or `end` when none. */
    std::uint64_t next = 0;
    /** UncondControl events skipped in [begin, next). */
    std::uint64_t uncond = 0;
    /** PredDefine events skipped in [begin, next); always 0 when
     *  defines are interesting (the scan stops on them instead). */
    std::uint64_t defines = 0;
};

/**
 * @name Class-lane byte encoding
 * The scan kernels bake in the DecodedTrace::Class byte values so the
 * AVX2 compare constants are compile-time splats; the engine
 * static_asserts the real enum against these.
 * @{
 */
constexpr std::uint8_t classOther = 0;
constexpr std::uint8_t classCondBranch = 1;
constexpr std::uint8_t classUncondControl = 2;
constexpr std::uint8_t classPredDefine = 3;
/** @} */

/**
 * Scan a class lane from @p begin for the next event the batch loop
 * must process: classCondBranch always stops the scan, and
 * classPredDefine stops it when @p definesInteresting (a predicate
 * technique is armed). Skipped UncondControl and PredDefine events
 * are counted - for configurations where those classes only bump a
 * counter, the count IS the processing.
 */
ScanResult scanClasses(const std::uint8_t *cls, std::uint64_t begin,
                       std::uint64_t end, bool definesInteresting);

/** What a whole-batch stop collection found. */
struct CollectResult
{
    /** CondBranch indices written to @p outBranches. */
    std::uint64_t branches = 0;
    /** PredDefine events in [begin, end) - collected into
     *  @p outDefines when defines are interesting, merely counted
     *  otherwise. */
    std::uint64_t defines = 0;
    /** Skipped UncondControl events in [begin, end). */
    std::uint64_t uncond = 0;
};

/**
 * One-pass form of scanClasses over the whole range: writes the index
 * of every classCondBranch event into @p outBranches and (when
 * @p definesInteresting) every classPredDefine index into
 * @p outDefines - each buffer must have room for `end - begin`
 * entries - and counts the skipped classes. Splitting the two stop
 * kinds into separate ascending streams lets the batch loop consume
 * defines from a branch-major merge (a short inner run per branch)
 * instead of re-classifying a mixed stream one mispredicting test per
 * event. When @p definesInteresting is false @p outDefines may be
 * null; defines are then only counted. @p outUnconds follows the same
 * optional contract for UncondControl indices (needed when the engine
 * models taken-branch targets): null counts them, non-null (same
 * `end - begin` room) collects a third ascending stream.
 */
CollectResult collectStops(const std::uint8_t *cls, std::uint64_t begin,
                           std::uint64_t end, bool definesInteresting,
                           std::uint32_t *outBranches,
                           std::uint32_t *outDefines,
                           std::uint32_t *outUnconds = nullptr);

} // namespace simd
} // namespace pabp

#endif // PABP_UTIL_SIMD_HH
