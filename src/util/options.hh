/**
 * @file
 * Minimal command-line option parser shared by the bench and example
 * binaries. Supports --name=value and --name value, with typed
 * accessors and defaults, plus --help text generation.
 */

#ifndef PABP_UTIL_OPTIONS_HH
#define PABP_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hh"

namespace pabp {

/** Declarative command-line options with defaults. */
class Options
{
  public:
    /** Declare an option before parsing. */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Parse argv. Unknown options and stray arguments come back as
     * an InvalidArgument Status; @p help_requested is set when
     * --help/-h was seen (help text printed to stdout).
     */
    Status tryParse(int argc, const char *const *argv,
                    bool &help_requested);

    /**
     * CLI shim over tryParse: unknown options are fatal. Returns
     * false when --help was requested.
     */
    bool parse(int argc, const char *const *argv);

    std::string str(const std::string &name) const;
    std::int64_t integer(const std::string &name) const;
    double real(const std::string &name) const;
    bool flag(const std::string &name) const;

    /** Print declared options and defaults. */
    void printHelp(const std::string &program) const;

  private:
    struct Decl
    {
        std::string defaultValue;
        std::string help;
    };

    std::map<std::string, Decl> decls;
    std::map<std::string, std::string> values;
    std::vector<std::string> order;
};

} // namespace pabp

#endif // PABP_UTIL_OPTIONS_HH
