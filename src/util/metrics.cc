#include "util/metrics.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/logging.hh"

namespace pabp {

namespace {

/** Fixed real formatting: enough digits to round-trip a rate, short
 *  enough to stay readable. Part of the byte-stability contract. */
std::string
formatReal(double v)
{
    if (!std::isfinite(v))
        v = 0.0; // JSON has no inf/nan; exporters only feed rates
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // anonymous namespace

void
MetricsExporter::setInt(const std::string &name, std::uint64_t v)
{
    Value val;
    val.kind = Value::Kind::Int;
    val.i = v;
    metrics[name] = std::move(val);
}

void
MetricsExporter::setReal(const std::string &name, double v)
{
    Value val;
    val.kind = Value::Kind::Real;
    val.d = v;
    metrics[name] = std::move(val);
}

void
MetricsExporter::setText(const std::string &name, const std::string &v)
{
    Value val;
    val.kind = Value::Kind::Text;
    val.s = v;
    metrics[name] = std::move(val);
}

void
MetricsExporter::addGroup(const StatGroup &group, const std::string &prefix)
{
    for (const auto &[name, v] : group.snapshot())
        setInt(prefix + name, v);
}

void
MetricsExporter::addHistogram(const std::string &name, const Histogram &h)
{
    setInt(name + ".count", h.count());
    setInt(name + ".sum", h.sumOfSamples());
    setReal(name + ".mean", h.mean());
    setInt(name + ".bucket_width", h.bucketWidth());
    setInt(name + ".overflow", h.overflowCount());
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        char key[32];
        // Zero-padded index so lexicographic key order equals bucket
        // order in the sorted document.
        std::snprintf(key, sizeof(key), ".bucket.%04zu", i);
        setInt(name + key, h.bucketCount(i));
    }
}

void
MetricsExporter::declareTable(const std::string &name,
                              std::vector<std::string> columns)
{
    pabp_assert(!columns.empty());
    TableData &t = tables[name];
    t.columns = std::move(columns);
    t.rows.clear();
}

void
MetricsExporter::addRow(const std::string &name,
                        std::vector<std::uint64_t> row)
{
    auto it = tables.find(name);
    pabp_assert(it != tables.end() &&
                row.size() == it->second.columns.size());
    it->second.rows.push_back(std::move(row));
}

void
MetricsExporter::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"schema\": ";
    writeJsonString(os, kMetricsSchemaName);
    os << ",\n  \"version\": " << kMetricsSchemaVersion << ",\n";

    os << "  \"metrics\": {";
    bool first = true;
    for (const auto &[name, v] : metrics) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        writeJsonString(os, name);
        os << ": ";
        switch (v.kind) {
          case Value::Kind::Int: os << v.i; break;
          case Value::Kind::Real: os << formatReal(v.d); break;
          case Value::Kind::Text: writeJsonString(os, v.s); break;
        }
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"tables\": {";
    first = true;
    for (const auto &[name, t] : tables) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        writeJsonString(os, name);
        os << ": {\n      \"columns\": [";
        for (std::size_t i = 0; i < t.columns.size(); ++i) {
            if (i)
                os << ", ";
            writeJsonString(os, t.columns[i]);
        }
        os << "],\n      \"rows\": [";
        for (std::size_t r = 0; r < t.rows.size(); ++r) {
            os << (r ? ",\n        " : "\n        ") << "[";
            for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
                if (c)
                    os << ", ";
                os << t.rows[r][c];
            }
            os << "]";
        }
        os << (t.rows.empty() ? "]\n    }" : "\n      ]\n    }");
    }
    os << (first ? "}\n" : "\n  }\n");
    os << "}\n";
}

void
MetricsExporter::writeCsv(std::ostream &os) const
{
    os << "name,value\n";
    for (const auto &[name, v] : metrics) {
        os << name << ",";
        switch (v.kind) {
          case Value::Kind::Int: os << v.i; break;
          case Value::Kind::Real: os << formatReal(v.d); break;
          case Value::Kind::Text: os << v.s; break;
        }
        os << "\n";
    }
    for (const auto &[name, t] : tables) {
        os << "\ntable," << name << "\n";
        for (std::size_t i = 0; i < t.columns.size(); ++i)
            os << (i ? "," : "") << t.columns[i];
        os << "\n";
        for (const auto &row : t.rows) {
            for (std::size_t c = 0; c < row.size(); ++c)
                os << (c ? "," : "") << row[c];
            os << "\n";
        }
    }
}

Status
MetricsExporter::writeJsonFile(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return Status(StatusCode::IoError,
                          "cannot open metrics file for writing: " + tmp);
        writeJson(os);
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            return Status(StatusCode::IoError,
                          "write failure on metrics file: " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status(StatusCode::IoError,
                      "cannot rename metrics file into place: " + path);
    }
    return Status();
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

namespace {

/** Strict recursive-descent parser over the exporter's JSON subset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : src(text) {}

    Expected<JsonValue>
    parse()
    {
        JsonValue v;
        PABP_TRY(parseValue(v, 0));
        skipWs();
        if (pos != src.size())
            return fail("trailing characters after document");
        return v;
    }

  private:
    static constexpr std::size_t maxDepth = 64;

    const std::string &src;
    std::size_t pos = 0;

    Status
    fail(const std::string &what) const
    {
        return Status(StatusCode::Corrupt,
                      "json parse error at byte " + std::to_string(pos) +
                          ": " + what);
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Status
    expect(char c)
    {
        if (!consume(c))
            return fail(std::string("expected '") + c + "'");
        return Status();
    }

    Status
    parseLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p)
            if (pos >= src.size() || src[pos++] != *p)
                return fail(std::string("bad literal, expected ") + lit);
        return Status();
    }

    Status
    parseString(std::string &out)
    {
        PABP_TRY(expect('"'));
        out.clear();
        while (true) {
            if (pos >= src.size())
                return fail("unterminated string");
            char c = src[pos++];
            if (c == '"')
                return Status();
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= src.size())
                return fail("unterminated escape");
            char e = src[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (pos + 4 > src.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // The exporter only escapes control bytes; decode the
                // Latin-1 range and reject the rest as out of scope.
                if (code > 0xff)
                    return fail("\\u escape beyond latin-1 unsupported");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    Status
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        if (consume('-')) {}
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
        bool integral = true;
        if (consume('.')) {
            integral = false;
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
            integral = false;
            ++pos;
            if (pos < src.size() &&
                (src[pos] == '+' || src[pos] == '-'))
                ++pos;
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        const std::string token = src.substr(start, pos - start);
        if (token.empty() || token == "-")
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(token.c_str(), nullptr);
        out.isInt = integral && token[0] != '-';
        if (out.isInt)
            out.intValue = std::strtoull(token.c_str(), nullptr, 10);
        return Status();
    }

    Status
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= src.size())
            return fail("unexpected end of input");
        char c = src[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return Status();
            while (true) {
                skipWs();
                std::string key;
                PABP_TRY(parseString(key));
                skipWs();
                PABP_TRY(expect(':'));
                JsonValue member;
                PABP_TRY(parseValue(member, depth + 1));
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipWs();
                if (consume('}'))
                    return Status();
                PABP_TRY(expect(','));
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return Status();
            while (true) {
                JsonValue item;
                PABP_TRY(parseValue(item, depth + 1));
                out.items.push_back(std::move(item));
                skipWs();
                if (consume(']'))
                    return Status();
                PABP_TRY(expect(','));
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            PABP_TRY(parseLiteral("true"));
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return Status();
        }
        if (c == 'f') {
            PABP_TRY(parseLiteral("false"));
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return Status();
        }
        if (c == 'n') {
            PABP_TRY(parseLiteral("null"));
            out.kind = JsonValue::Kind::Null;
            return Status();
        }
        return parseNumber(out);
    }
};

std::string
jsonScalarToString(const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return v.boolean ? "true" : "false";
      case JsonValue::Kind::String: return v.text;
      case JsonValue::Kind::Number:
        if (v.isInt)
            return std::to_string(v.intValue);
        return formatReal(v.number);
      default: return "<composite>";
    }
}

bool
jsonScalarEqual(const JsonValue *a, const JsonValue *b)
{
    // A key absent on one side counts as 0 / "" - a metric that
    // appeared or disappeared is a difference unless it is zero.
    static const JsonValue zero = [] {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.isInt = true;
        return v;
    }();
    const JsonValue &lhs = a ? *a : zero;
    const JsonValue &rhs = b ? *b : zero;
    if (lhs.kind == JsonValue::Kind::Number &&
        rhs.kind == JsonValue::Kind::Number)
        return lhs.number == rhs.number &&
            lhs.intValue == rhs.intValue && lhs.isInt == rhs.isInt;
    if (lhs.kind != rhs.kind)
        return false;
    return jsonScalarToString(lhs) == jsonScalarToString(rhs);
}

std::string
deltaString(const JsonValue *a, const JsonValue *b)
{
    const bool ints = (!a || (a->kind == JsonValue::Kind::Number &&
                              a->isInt)) &&
        (!b || (b->kind == JsonValue::Kind::Number && b->isInt));
    if (!ints)
        return "";
    const std::int64_t lhs =
        a ? static_cast<std::int64_t>(a->intValue) : 0;
    const std::int64_t rhs =
        b ? static_cast<std::int64_t>(b->intValue) : 0;
    const std::int64_t d = rhs - lhs;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%+" PRId64 ")", d);
    return buf;
}

} // anonymous namespace

Expected<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

std::size_t
diffMetrics(const JsonValue &a, const JsonValue &b, std::ostream &os,
            std::size_t top_k)
{
    std::size_t diffs = 0;

    // Scalar metrics: union of names, sorted.
    const JsonValue *ma = a.find("metrics");
    const JsonValue *mb = b.find("metrics");
    std::map<std::string, std::pair<const JsonValue *, const JsonValue *>>
        names;
    if (ma)
        for (const auto &[k, v] : ma->members)
            names[k].first = &v;
    if (mb)
        for (const auto &[k, v] : mb->members)
            names[k].second = &v;
    for (const auto &[name, pair] : names) {
        if (jsonScalarEqual(pair.first, pair.second))
            continue;
        ++diffs;
        os << name << ": "
           << (pair.first ? jsonScalarToString(*pair.first) : "-")
           << " -> "
           << (pair.second ? jsonScalarToString(*pair.second) : "-")
           << deltaString(pair.first, pair.second) << "\n";
    }

    // Tables: rows keyed by first column, compared per column.
    const JsonValue *ta = a.find("tables");
    const JsonValue *tb = b.find("tables");
    std::map<std::string,
             std::pair<const JsonValue *, const JsonValue *>> tnames;
    if (ta)
        for (const auto &[k, v] : ta->members)
            tnames[k].first = &v;
    if (tb)
        for (const auto &[k, v] : tb->members)
            tnames[k].second = &v;
    for (const auto &[tname, tpair] : tnames) {
        const JsonValue *cols = nullptr;
        for (const JsonValue *t : {tpair.first, tpair.second})
            if (t && t->find("columns"))
                cols = t->find("columns");
        if (!cols || cols->items.empty())
            continue;
        auto rowsByKey = [](const JsonValue *t) {
            std::map<std::uint64_t, const JsonValue *> out;
            const JsonValue *rows = t ? t->find("rows") : nullptr;
            if (!rows)
                return out;
            for (const JsonValue &row : rows->items)
                if (!row.items.empty())
                    out[row.items[0].intValue] = &row;
            return out;
        };
        const auto ra = rowsByKey(tpair.first);
        const auto rb = rowsByKey(tpair.second);
        std::map<std::uint64_t,
                 std::pair<const JsonValue *, const JsonValue *>> keys;
        for (const auto &[k, row] : ra)
            keys[k].first = row;
        for (const auto &[k, row] : rb)
            keys[k].second = row;

        std::size_t printed = 0, suppressed = 0;
        for (const auto &[key, rows] : keys) {
            bool row_differs = false;
            std::string line;
            for (std::size_t c = 1; c < cols->items.size(); ++c) {
                const JsonValue *va = rows.first &&
                        c < rows.first->items.size()
                    ? &rows.first->items[c]
                    : nullptr;
                const JsonValue *vb = rows.second &&
                        c < rows.second->items.size()
                    ? &rows.second->items[c]
                    : nullptr;
                if (jsonScalarEqual(va, vb))
                    continue;
                row_differs = true;
                line += "  " + cols->items[c].text + " " +
                    (va ? jsonScalarToString(*va) : "0") + " -> " +
                    (vb ? jsonScalarToString(*vb) : "0") +
                    deltaString(va, vb) + "\n";
            }
            if (!row_differs)
                continue;
            ++diffs;
            if (top_k && printed >= top_k) {
                ++suppressed;
                continue;
            }
            ++printed;
            os << tname << "[" << cols->items[0].text << "=" << key
               << "]:\n" << line;
        }
        if (suppressed)
            os << tname << ": ... " << suppressed
               << " more differing row(s) suppressed (--top)\n";
    }
    return diffs;
}

} // namespace pabp
