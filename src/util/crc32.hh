/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) - the integrity check
 * used by the PABPTRC2 trace format and the checkpoint files. Plain
 * table-driven byte-at-a-time implementation; the streams it protects
 * are read once sequentially, so throughput is not the bottleneck.
 */

#ifndef PABP_UTIL_CRC32_HH
#define PABP_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace pabp {

/** Incremental CRC-32 over a byte stream. */
class Crc32
{
  public:
    /** Fold @p len bytes at @p data into the running checksum. */
    void update(const void *data, std::size_t len);

    /** Finalised checksum of everything updated so far. */
    std::uint32_t value() const { return state ^ 0xffffffffu; }

    void reset() { state = 0xffffffffu; }

  private:
    std::uint32_t state = 0xffffffffu;
};

/** One-shot convenience. */
std::uint32_t crc32(const void *data, std::size_t len);

} // namespace pabp

#endif // PABP_UTIL_CRC32_HH
