/**
 * @file
 * Read-only memory-mapped file with typed errors.
 *
 * The zero-copy DecodedTrace loader points its lanes straight into a
 * mapping instead of deserialising into vectors, so opening a
 * multi-gigabyte decoded trace costs page-table setup, not a copy of
 * the file. The wrapper owns the mapping for its lifetime (munmap on
 * destruction) and is movable but not copyable, exactly like the
 * structures built on top of it.
 */

#ifndef PABP_UTIL_MMAP_FILE_HH
#define PABP_UTIL_MMAP_FILE_HH

#include <cstddef>
#include <string>

#include "util/status.hh"

namespace pabp {

/** An open read-only file mapping. */
class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile();

    MmapFile(MmapFile &&other) noexcept;
    MmapFile &operator=(MmapFile &&other) noexcept;
    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /**
     * Map @p path read-only. Missing/unreadable files are IoError;
     * an empty file maps successfully with size() == 0 and a null
     * data() (there are no bytes to point at).
     */
    static Expected<MmapFile> open(const std::string &path);

    const unsigned char *data() const { return base; }
    std::size_t size() const { return length; }
    bool mapped() const { return base != nullptr || length == 0; }

  private:
    const unsigned char *base = nullptr;
    std::size_t length = 0;
};

} // namespace pabp

#endif // PABP_UTIL_MMAP_FILE_HH
