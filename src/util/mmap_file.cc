#include "util/mmap_file.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pabp {

MmapFile::~MmapFile()
{
    if (base != nullptr)
        ::munmap(const_cast<unsigned char *>(base), length);
}

MmapFile::MmapFile(MmapFile &&other) noexcept
    : base(std::exchange(other.base, nullptr)),
      length(std::exchange(other.length, 0))
{
}

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this != &other) {
        if (base != nullptr)
            ::munmap(const_cast<unsigned char *>(base), length);
        base = std::exchange(other.base, nullptr);
        length = std::exchange(other.length, 0);
    }
    return *this;
}

Expected<MmapFile>
MmapFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return Status(StatusCode::IoError,
                      "cannot open " + path + ": " +
                          std::strerror(errno));
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return Status(StatusCode::IoError,
                      "cannot stat " + path + ": " +
                          std::strerror(err));
    }
    MmapFile out;
    out.length = static_cast<std::size_t>(st.st_size);
    if (out.length > 0) {
        void *mapping =
            ::mmap(nullptr, out.length, PROT_READ, MAP_PRIVATE, fd, 0);
        if (mapping == MAP_FAILED) {
            const int err = errno;
            ::close(fd);
            out.length = 0;
            return Status(StatusCode::IoError,
                          "cannot mmap " + path + ": " +
                              std::strerror(err));
        }
        out.base = static_cast<const unsigned char *>(mapping);
    }
    // The mapping holds its own reference to the file.
    ::close(fd);
    return out;
}

} // namespace pabp
