/**
 * @file
 * Append-only, CRC-framed results journal - the durable sink of the
 * crash-safe sweep service (bench/sweep_service.hh). One journal file
 * holds one shard's results: a fixed header followed by a sequence of
 * independently CRC-32-protected record frames, each keyed by a spec
 * fingerprint. The design goals, in order:
 *
 *  - A crash (SIGKILL, power loss) at ANY byte position costs at most
 *    the record being appended: opening the file for writing scans it
 *    and TRUNCATES a torn or corrupt tail back to the last fully
 *    valid frame (the PABPTRC2 salvage discipline - longest valid
 *    prefix - applied to a mutable file).
 *  - Appends never rewrite existing bytes, so two processes of the
 *    same campaign interrupted at different points converge to the
 *    same byte sequence once both have drained.
 *  - Compaction (dropping superseded records for re-run cells) goes
 *    through write-then-rename: at every instant the on-disk artifact
 *    is either the complete old journal or the complete new one,
 *    never a mix.
 *
 * On-disk layout (little-endian):
 *
 *   | magic[8] "PABPJRN1" | u32 version = 1
 *   | u32 shardIndex | u32 shardCount
 *   | u32 headerCrc        - CRC-32 of the 20 bytes above
 *   | record frames...
 *
 * Record frame:
 *
 *   | u32 payloadLen | u32 payloadCrc | payload bytes
 *
 * Record payload (via util/serialize.hh):
 *
 *   | u8 kind | u64 fingerprint | u32 attempts | u8 statusCode
 *   | u32 numColumns | u64 column values
 *   | string blob (u64 length + bytes)
 *
 * The journal layer is deliberately generic: a record is a kind, a
 * fingerprint, a small vector of u64 columns and an opaque blob. The
 * sweep layer defines the column order (bench/sweep_service.hh) and
 * stores the cell's byte-stable metrics JSON in the blob, which is
 * what lets tools/pabp-stats query and diff cells straight out of a
 * journal without per-cell loose files. See docs/ROBUSTNESS.md.
 */

#ifndef PABP_UTIL_JOURNAL_HH
#define PABP_UTIL_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.hh"

namespace pabp {

inline constexpr char kJournalMagic[9] = "PABPJRN1";
inline constexpr std::uint32_t kJournalVersion = 1;

/** Sanity bounds so corrupt lengths cannot trigger huge allocations
 *  before a CRC check. */
inline constexpr std::uint32_t kJournalMaxFrameBytes = 64u << 20;
inline constexpr std::uint32_t kJournalMaxColumns = 1024;

/** Journal identity: which shard of which partitioning wrote it. */
struct JournalHeader
{
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;

    bool operator==(const JournalHeader &) const = default;
};

/** One appended record. */
struct JournalRecord
{
    enum class Kind : std::uint8_t
    {
        Result = 1,     ///< cell completed; blob = metrics JSON
        Quarantine = 2, ///< cell failed terminally; blob = error text
    };

    Kind kind = Kind::Result;
    std::uint64_t fingerprint = 0;
    std::uint32_t attempts = 1;    ///< tries the cell consumed
    std::uint8_t statusCode = 0;   ///< pabp::StatusCode, 0 = Ok
    std::vector<std::uint64_t> columns; ///< writer-defined column order
    std::string blob;              ///< metrics JSON / error message

    bool operator==(const JournalRecord &) const = default;
};

/** Reader knobs. */
struct JournalReadOptions
{
    /**
     * Best-effort recovery: when a frame is torn (file ends inside
     * it) or fails its CRC, return the longest prefix of fully valid
     * records instead of an error. The header must still verify - a
     * journal whose identity is damaged cannot be trusted at all.
     */
    bool salvage = false;
};

/** What the reader learned. */
struct JournalReadInfo
{
    bool salvaged = false;         ///< a damaged tail was dropped
    std::uint64_t validBytes = 0;  ///< length of the valid prefix
    std::uint64_t tailBytesDropped = 0; ///< bytes past the valid prefix
};

/** Serialise the header (magic, version, identity, CRC). */
void writeJournalHeader(std::ostream &os, const JournalHeader &header);

/** Serialise one record frame. Returns bytes written. */
std::uint64_t appendJournalRecord(std::ostream &os,
                                  const JournalRecord &record);

/**
 * Parse a complete journal image. All malformed-input paths return a
 * typed Status (BadMagic, VersionMismatch, ChecksumMismatch,
 * Truncated, Corrupt); nothing aborts. With @ref
 * JournalReadOptions::salvage, damage after the header yields the
 * valid record prefix and sets @p info->salvaged.
 */
Expected<std::vector<JournalRecord>>
readJournalImage(const std::string &bytes,
                 const JournalReadOptions &opts = {},
                 JournalHeader *header = nullptr,
                 JournalReadInfo *info = nullptr);

/** File wrapper over readJournalImage(). */
Expected<std::vector<JournalRecord>>
readJournalFile(const std::string &path,
                const JournalReadOptions &opts = {},
                JournalHeader *header = nullptr,
                JournalReadInfo *info = nullptr);

/**
 * Append handle on a journal file. open() creates the file (writing
 * the header) or adopts an existing one: the existing image is
 * scanned, a torn/corrupt tail is physically truncated away, a stale
 * compaction temp file is removed, and the surviving records are
 * handed back so the caller can skip completed work. A header whose
 * identity does not match @p header is refused (InvalidArgument) -
 * a shard must not append into another shard's journal.
 */
class JournalWriter
{
  public:
    static Expected<JournalWriter>
    open(const std::string &path, const JournalHeader &header,
         std::vector<JournalRecord> *existing = nullptr,
         JournalReadInfo *info = nullptr);

    /** Append one frame and flush it to the OS. */
    Status append(const JournalRecord &record);

    /** Flush + close; further appends are invalid. Called by the
     *  destructor; explicit close lets the caller rename/compact. */
    void close();

    const std::string &path() const { return filePath; }
    std::uint64_t recordsAppended() const { return appended; }

  private:
    JournalWriter() = default;

    std::string filePath;
    std::ofstream out;
    std::uint64_t appended = 0;
};

/**
 * Rewrite @p path keeping only the LAST record for each fingerprint,
 * ordered by @p order (fingerprints listed there first, in that
 * order; any remaining records follow in first-appearance order).
 * The new image is written to "<path>.tmp" and renamed into place:
 * a crash leaves either the old journal or the new one, never a mix.
 */
Status compactJournal(const std::string &path,
                      const std::vector<std::uint64_t> &order = {});

/** Write @p bytes to @p path via write-then-rename. */
Status atomicWriteFile(const std::string &path, const std::string &bytes);

} // namespace pabp

#endif // PABP_UTIL_JOURNAL_HH
