/**
 * @file
 * Deterministic fault injection for exercising the library's degraded
 * paths. A FaultSpec names one fault - flip a bit at a byte offset,
 * truncate at an offset, or fail the underlying stream at an offset -
 * and the helpers apply it to an in-memory artifact image or wrap the
 * image in a stream that misbehaves on cue. tests/test_fault_injection
 * sweeps these over the trace and checkpoint readers to prove every
 * injected fault surfaces as a typed Status (or a successful salvage),
 * never as a process abort.
 */

#ifndef PABP_UTIL_FAULT_INJECTION_HH
#define PABP_UTIL_FAULT_INJECTION_HH

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>

namespace pabp {

/** One injected fault. */
struct FaultSpec
{
    enum class Kind : std::uint8_t
    {
        None,     ///< pass-through
        BitFlip,  ///< invert bit @c bit of the byte at @c offset
        Truncate, ///< drop every byte at and after @c offset
        FailRead, ///< the stream hard-fails (badbit) at @c offset
    };

    Kind kind = Kind::None;
    std::uint64_t offset = 0;
    unsigned bit = 0; ///< BitFlip only, 0..7

    static FaultSpec
    bitFlip(std::uint64_t offset, unsigned bit = 0)
    {
        return FaultSpec{Kind::BitFlip, offset, bit};
    }

    static FaultSpec
    truncate(std::uint64_t offset)
    {
        return FaultSpec{Kind::Truncate, offset, 0};
    }

    static FaultSpec
    failRead(std::uint64_t offset)
    {
        return FaultSpec{Kind::FailRead, offset, 0};
    }
};

/**
 * Apply a BitFlip or Truncate fault to a byte image. FailRead cannot
 * be represented in a plain buffer; use FaultyStream for it. Offsets
 * at or past the end leave the image unchanged.
 */
std::string applyFault(std::string bytes, const FaultSpec &spec);

/**
 * A streambuf over a byte image that serves data normally up to the
 * fault point and then, for FailRead, throws from underflow() - which
 * istream converts into badbit, exactly how a real I/O error (EIO,
 * yanked disk, dropped NFS mount) reaches a reader.
 */
class FaultyStreambuf : public std::streambuf
{
  public:
    FaultyStreambuf(std::string bytes, FaultSpec spec);

  protected:
    int_type underflow() override;

  private:
    std::string data;
    bool failAtEnd;
};

/** Owning convenience wrapper: an istream over a faulty image. */
class FaultyStream
{
  public:
    FaultyStream(std::string bytes, FaultSpec spec)
        : buf(std::move(bytes), spec), in(&buf)
    {}

    std::istream &stream() { return in; }

  private:
    FaultyStreambuf buf;
    std::istream in;
};

} // namespace pabp

#endif // PABP_UTIL_FAULT_INJECTION_HH
