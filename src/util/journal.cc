#include "util/journal.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <system_error>
#include <utility>

#include "util/crc32.hh"
#include "util/serialize.hh"

namespace pabp {

namespace {

/** Bytes of header before its CRC field: magic + version + identity. */
constexpr std::size_t kHeaderBodyBytes = 8 + 4 + 4 + 4;
constexpr std::size_t kHeaderBytes = kHeaderBodyBytes + 4;
constexpr std::size_t kFrameHeaderBytes = 4 + 4; ///< len + crc

std::string
recordPayload(const JournalRecord &record)
{
    std::ostringstream os;
    StateSink sink(os);
    sink.writeU8(static_cast<std::uint8_t>(record.kind));
    sink.writeU64(record.fingerprint);
    sink.writeU32(record.attempts);
    sink.writeU8(record.statusCode);
    sink.writeU32(static_cast<std::uint32_t>(record.columns.size()));
    for (std::uint64_t column : record.columns)
        sink.writeU64(column);
    sink.writeString(record.blob);
    return os.str();
}

Status
parsePayload(const std::string &payload, JournalRecord &record)
{
    std::istringstream is(payload);
    StateSource src(is);
    std::uint8_t kind = 0;
    PABP_TRY(src.readPod(kind));
    if (kind != static_cast<std::uint8_t>(JournalRecord::Kind::Result) &&
        kind != static_cast<std::uint8_t>(JournalRecord::Kind::Quarantine))
        return Status(StatusCode::Corrupt,
                      "journal record has unknown kind " +
                          std::to_string(kind));
    record.kind = static_cast<JournalRecord::Kind>(kind);
    PABP_TRY(src.readPod(record.fingerprint));
    PABP_TRY(src.readPod(record.attempts));
    PABP_TRY(src.readPod(record.statusCode));
    std::uint32_t columns = 0;
    PABP_TRY(src.readPod(columns));
    if (columns > kJournalMaxColumns)
        return Status(StatusCode::Corrupt,
                      "journal record claims " + std::to_string(columns) +
                          " columns (bound " +
                          std::to_string(kJournalMaxColumns) + ")");
    record.columns.resize(columns);
    for (std::uint32_t i = 0; i < columns; ++i)
        PABP_TRY(src.readPod(record.columns[i]));
    PABP_TRY(src.readString(record.blob, kJournalMaxFrameBytes));
    return Status();
}

/** Little-endian u32 at @p offset of @p bytes (caller checks bounds). */
std::uint32_t
loadU32(const std::string &bytes, std::size_t offset)
{
    std::uint32_t v = 0;
    std::memcpy(&v, bytes.data() + offset, sizeof(v));
    return v;
}

Status
parseHeader(const std::string &bytes, JournalHeader &header)
{
    if (bytes.size() < 8 ||
        std::memcmp(bytes.data(), kJournalMagic, 8) != 0)
        return Status(StatusCode::BadMagic,
                      "not a pabp journal (bad magic)");
    if (bytes.size() < kHeaderBytes)
        return Status(StatusCode::Truncated,
                      "journal ends inside the header");
    const std::uint32_t version = loadU32(bytes, 8);
    if (version != kJournalVersion)
        return Status(StatusCode::VersionMismatch,
                      "journal version " + std::to_string(version) +
                          " is not supported (expected " +
                          std::to_string(kJournalVersion) + ")");
    const std::uint32_t stored_crc = loadU32(bytes, kHeaderBodyBytes);
    if (crc32(bytes.data(), kHeaderBodyBytes) != stored_crc)
        return Status(StatusCode::ChecksumMismatch,
                      "journal header CRC mismatch");
    header.shardIndex = loadU32(bytes, 12);
    header.shardCount = loadU32(bytes, 16);
    return Status();
}

} // anonymous namespace

void
writeJournalHeader(std::ostream &os, const JournalHeader &header)
{
    std::string body;
    body.append(kJournalMagic, 8);
    auto put_u32 = [&body](std::uint32_t v) {
        char raw[4];
        std::memcpy(raw, &v, sizeof(v));
        body.append(raw, 4);
    };
    put_u32(kJournalVersion);
    put_u32(header.shardIndex);
    put_u32(header.shardCount);
    const std::uint32_t crc = crc32(body.data(), body.size());
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
}

std::uint64_t
appendJournalRecord(std::ostream &os, const JournalRecord &record)
{
    const std::string payload = recordPayload(record);
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    os.write(reinterpret_cast<const char *>(&len), sizeof(len));
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    return kFrameHeaderBytes + payload.size();
}

Expected<std::vector<JournalRecord>>
readJournalImage(const std::string &bytes, const JournalReadOptions &opts,
                 JournalHeader *header, JournalReadInfo *info)
{
    JournalHeader parsed_header;
    // Header damage is fatal even under salvage: a journal whose
    // identity cannot be verified must not silently pass for empty.
    PABP_TRY(parseHeader(bytes, parsed_header));
    if (header)
        *header = parsed_header;

    std::vector<JournalRecord> records;
    std::size_t offset = kHeaderBytes;
    Status tail_error;
    while (offset < bytes.size()) {
        if (bytes.size() - offset < kFrameHeaderBytes) {
            tail_error = Status(StatusCode::Truncated,
                                "journal ends inside a frame header");
            break;
        }
        const std::uint32_t len = loadU32(bytes, offset);
        const std::uint32_t stored_crc = loadU32(bytes, offset + 4);
        if (len > kJournalMaxFrameBytes) {
            tail_error =
                Status(StatusCode::Corrupt,
                       "journal frame claims " + std::to_string(len) +
                           " bytes (bound " +
                           std::to_string(kJournalMaxFrameBytes) + ")");
            break;
        }
        if (bytes.size() - offset - kFrameHeaderBytes < len) {
            tail_error = Status(StatusCode::Truncated,
                                "journal ends inside a record frame");
            break;
        }
        const char *payload = bytes.data() + offset + kFrameHeaderBytes;
        if (crc32(payload, len) != stored_crc) {
            tail_error = Status(StatusCode::ChecksumMismatch,
                                "journal record CRC mismatch at offset " +
                                    std::to_string(offset));
            break;
        }
        JournalRecord record;
        Status parsed =
            parsePayload(std::string(payload, len), record);
        if (!parsed.ok()) {
            tail_error = parsed;
            break;
        }
        records.push_back(std::move(record));
        offset += kFrameHeaderBytes + len;
    }

    if (info) {
        info->validBytes = offset;
        info->tailBytesDropped = bytes.size() - offset;
        info->salvaged = !tail_error.ok();
    }
    if (!tail_error.ok() && !opts.salvage)
        return tail_error;
    return records;
}

Expected<std::vector<JournalRecord>>
readJournalFile(const std::string &path, const JournalReadOptions &opts,
                JournalHeader *header, JournalReadInfo *info)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status(StatusCode::IoError,
                      "cannot open journal: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return Status(StatusCode::IoError,
                      "read failure on journal: " + path);
    return readJournalImage(buffer.str(), opts, header, info);
}

Expected<JournalWriter>
JournalWriter::open(const std::string &path, const JournalHeader &header,
                    std::vector<JournalRecord> *existing,
                    JournalReadInfo *info)
{
    // A compaction interrupted before its rename leaves "<path>.tmp";
    // the real journal is still the old complete image, so the temp
    // is garbage to be discarded, never adopted.
    std::remove((path + ".tmp").c_str());

    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            if (in.bad())
                return Status(StatusCode::IoError,
                              "read failure on journal: " + path);
            bytes = buffer.str();
        }
    }

    JournalWriter writer;
    writer.filePath = path;

    if (bytes.empty()) {
        // Fresh journal (missing or zero-length file).
        writer.out.open(path,
                        std::ios::binary | std::ios::trunc);
        if (!writer.out)
            return Status(StatusCode::IoError,
                          "cannot create journal: " + path);
        writeJournalHeader(writer.out, header);
        writer.out.flush();
        if (!writer.out)
            return Status(StatusCode::IoError,
                          "write failure creating journal: " + path);
        if (existing)
            existing->clear();
        if (info)
            *info = JournalReadInfo{false, bytes.size(), 0};
        return writer;
    }

    JournalHeader found;
    JournalReadOptions opts;
    opts.salvage = true;
    JournalReadInfo read_info;
    Expected<std::vector<JournalRecord>> records =
        readJournalImage(bytes, opts, &found, &read_info);
    if (!records.ok())
        return records.status();
    if (!(found == header))
        return Status(StatusCode::InvalidArgument,
                      "journal " + path + " belongs to shard " +
                          std::to_string(found.shardIndex) + "/" +
                          std::to_string(found.shardCount) +
                          ", not shard " +
                          std::to_string(header.shardIndex) + "/" +
                          std::to_string(header.shardCount));
    if (info)
        *info = read_info;

    if (read_info.tailBytesDropped > 0) {
        // Torn or corrupt tail: physically truncate back to the last
        // valid frame so the next append starts on a clean boundary.
        std::error_code ec;
        std::filesystem::resize_file(path, read_info.validBytes, ec);
        if (ec)
            return Status(StatusCode::IoError,
                          "cannot truncate torn journal tail of " +
                              path + ": " + ec.message());
    }

    writer.out.open(path, std::ios::binary | std::ios::in |
                              std::ios::out | std::ios::ate);
    if (!writer.out)
        return Status(StatusCode::IoError,
                      "cannot open journal for append: " + path);
    if (existing)
        *existing = std::move(records.value());
    return writer;
}

Status
JournalWriter::append(const JournalRecord &record)
{
    if (!out.is_open())
        return Status(StatusCode::InvalidArgument,
                      "append on a closed journal writer: " + filePath);
    appendJournalRecord(out, record);
    out.flush();
    if (!out)
        return Status(StatusCode::IoError,
                      "write failure appending to journal: " + filePath);
    ++appended;
    return Status();
}

void
JournalWriter::close()
{
    if (out.is_open()) {
        out.flush();
        out.close();
    }
}

Status
compactJournal(const std::string &path,
               const std::vector<std::uint64_t> &order)
{
    JournalHeader header;
    Expected<std::vector<JournalRecord>> records =
        readJournalFile(path, JournalReadOptions{}, &header);
    if (!records.ok())
        return records.status();

    // Last record per fingerprint wins; remember first appearance so
    // fingerprints outside @p order keep a deterministic position.
    std::map<std::uint64_t, JournalRecord> latest;
    std::vector<std::uint64_t> appearance;
    for (JournalRecord &record : records.value()) {
        if (latest.find(record.fingerprint) == latest.end())
            appearance.push_back(record.fingerprint);
        latest[record.fingerprint] = std::move(record);
    }

    std::ostringstream image;
    writeJournalHeader(image, header);
    auto emit = [&image, &latest](std::uint64_t fingerprint) {
        auto it = latest.find(fingerprint);
        if (it == latest.end())
            return;
        appendJournalRecord(image, it->second);
        latest.erase(it);
    };
    for (std::uint64_t fingerprint : order)
        emit(fingerprint);
    for (std::uint64_t fingerprint : appearance)
        emit(fingerprint);

    return atomicWriteFile(path, image.str());
}

Status
atomicWriteFile(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return Status(StatusCode::IoError,
                          "cannot open for writing: " + tmp);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            return Status(StatusCode::IoError,
                          "write failure on: " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status(StatusCode::IoError,
                      "cannot rename into place: " + path);
    }
    return Status();
}

} // namespace pabp
