/**
 * @file
 * Flat FIFO ring buffer for the simulator's small pending queues.
 *
 * The delayed predicate file and the PGU each keep a short queue of
 * in-flight writes that is pushed and popped once per predicate
 * define - a fifth to a third of an if-converted instruction stream -
 * so the queue operations sit directly on the replay hot path.
 * std::deque pays chunk-map indirection and out-of-line growth logic
 * for FIFO access; this ring is a single power-of-two vector with
 * monotonic head/tail cursors, so push/pop/front/empty are a handful
 * of inline instructions. Capacity grows by doubling and is never
 * given back (the queues are bounded by the visibility delay, a few
 * dozen entries).
 *
 * Deliberately minimal: exactly the deque surface the two users need
 * (push_back, pop_front, front, empty, size, clear) plus forEach for
 * checkpoint serialisation, which writes the same bytes element for
 * element as iterating a deque did.
 */

#ifndef PABP_UTIL_RING_QUEUE_HH
#define PABP_UTIL_RING_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace pabp {

/** Growable single-ended FIFO over a power-of-two buffer. */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return head == tail; }
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(tail - head);
    }

    const T &
    front() const
    {
        pabp_assert(!empty());
        return buf[head & mask];
    }

    void
    push_back(const T &v)
    {
        if (size() == buf.size())
            grow();
        buf[tail & mask] = v;
        ++tail;
    }

    void
    pop_front()
    {
        pabp_assert(!empty());
        ++head;
    }

    void clear() { head = tail = 0; }

    /** Visit every element oldest-first (checkpoint writers). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint64_t i = head; i != tail; ++i)
            fn(buf[i & mask]);
    }

  private:
    void
    grow()
    {
        const std::size_t n = size();
        std::vector<T> next(buf.empty() ? 16 : buf.size() * 2);
        for (std::uint64_t i = head; i != tail; ++i)
            next[static_cast<std::size_t>(i - head)] = buf[i & mask];
        buf = std::move(next);
        head = 0;
        tail = n;
        mask = buf.size() - 1;
    }

    std::vector<T> buf;
    /** Monotonic cursors; element i lives at buf[i & mask]. */
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    std::uint64_t mask = 0;
};

} // namespace pabp

#endif // PABP_UTIL_RING_QUEUE_HH
