#include "util/simd.hh"

#include <cstdlib>
#include <cstring>

#if defined(PABP_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define PABP_SIMD_X86 1
#include <immintrin.h>
#else
#define PABP_SIMD_X86 0
#endif

namespace pabp {
namespace simd {

namespace {

// ---------------------------------------------------------------------
// Scalar kernels - the reference semantics every other tier must
// reproduce bit for bit.

std::int32_t
dotScalar(const std::int16_t *w, std::uint64_t hist, unsigned n)
{
    std::int32_t out = w[0];
    for (unsigned i = 0; i < n; ++i) {
        bool bit = (hist >> i) & 1;
        out += bit ? w[i + 1] : -w[i + 1];
    }
    return out;
}

inline void
adjustScalar(std::int16_t &w, bool up, std::int16_t wmax,
             std::int16_t wmin)
{
    if (up) {
        if (w < wmax)
            ++w;
    } else {
        if (w > wmin)
            --w;
    }
}

void
trainScalar(std::int16_t *w, std::uint64_t hist, unsigned n, bool taken,
            std::int16_t wmax, std::int16_t wmin)
{
    adjustScalar(w[0], taken, wmax, wmin);
    for (unsigned i = 0; i < n; ++i) {
        bool bit = (hist >> i) & 1;
        adjustScalar(w[i + 1], bit == taken, wmax, wmin);
    }
}

ScanResult
scanScalar(const std::uint8_t *cls, std::uint64_t begin,
           std::uint64_t end, bool definesInteresting)
{
    ScanResult r;
    std::uint64_t i = begin;
    for (; i < end; ++i) {
        const std::uint8_t c = cls[i];
        if (c == classCondBranch ||
            (definesInteresting && c == classPredDefine))
            break;
        r.uncond += c == classUncondControl;
        r.defines += c == classPredDefine;
    }
    r.next = i;
    return r;
}

CollectResult
collectScalar(const std::uint8_t *cls, std::uint64_t begin,
              std::uint64_t end, bool definesInteresting,
              std::uint32_t *outBranches, std::uint32_t *outDefines,
              std::uint32_t *outUnconds)
{
    CollectResult r;
    for (std::uint64_t i = begin; i < end; ++i) {
        const std::uint8_t c = cls[i];
        if (c == classCondBranch) {
            outBranches[r.branches++] = static_cast<std::uint32_t>(i);
        } else if (c == classPredDefine) {
            if (definesInteresting)
                outDefines[r.defines] = static_cast<std::uint32_t>(i);
            ++r.defines;
        } else if (c == classUncondControl) {
            if (outUnconds)
                outUnconds[r.uncond] = static_cast<std::uint32_t>(i);
            ++r.uncond;
        }
    }
    return r;
}

#if PABP_SIMD_X86

// ---------------------------------------------------------------------
// AVX2 kernels. All integer arithmetic; sums are reassociated but the
// addends cannot overflow their accumulator, so the results are
// identical to the scalar tier.

/** 16 int16 lanes of +1/-1 selected by bits [16c, 16c+16) of hist. */
__attribute__((target("avx2"))) inline __m256i
historySigns16(std::uint64_t hist, unsigned chunk)
{
    const std::uint16_t part =
        static_cast<std::uint16_t>(hist >> (chunk * 16));
    const __m256i bits = _mm256_set1_epi16(static_cast<short>(part));
    const __m256i select = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        static_cast<short>(1 << 8), static_cast<short>(1 << 9),
        static_cast<short>(1 << 10), static_cast<short>(1 << 11),
        static_cast<short>(1 << 12), static_cast<short>(1 << 13),
        static_cast<short>(1 << 14),
        static_cast<short>(static_cast<unsigned short>(1u << 15)));
    // set -> all-ones lane, clear -> zero lane.
    const __m256i mask = _mm256_cmpeq_epi16(
        _mm256_and_si256(bits, select), select);
    // all-ones -> +1, zero -> -1.
    const __m256i one = _mm256_set1_epi16(1);
    const __m256i minus_one = _mm256_set1_epi16(-1);
    return _mm256_blendv_epi8(minus_one, one, mask);
}

__attribute__((target("avx2"))) std::int32_t
dotAvx2(const std::int16_t *w, std::uint64_t hist, unsigned n)
{
    std::int32_t out = w[0];
    const unsigned chunks = n / 16;
    __m256i acc = _mm256_setzero_si256();
    for (unsigned c = 0; c < chunks; ++c) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + 1 + c * 16));
        // madd multiplies int16 lanes by +/-1 and sums adjacent pairs
        // into int32 lanes: exact, no saturation possible.
        acc = _mm256_add_epi32(
            acc, _mm256_madd_epi16(wv, historySigns16(hist, c)));
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    for (int l = 0; l < 8; ++l)
        out += lanes[l];
    for (unsigned i = chunks * 16; i < n; ++i) {
        bool bit = (hist >> i) & 1;
        out += bit ? w[i + 1] : -w[i + 1];
    }
    return out;
}

__attribute__((target("avx2"))) void
trainAvx2(std::int16_t *w, std::uint64_t hist, unsigned n, bool taken,
          std::int16_t wmax, std::int16_t wmin)
{
    adjustScalar(w[0], taken, wmax, wmin);
    const unsigned chunks = n / 16;
    const __m256i taken_v =
        taken ? _mm256_set1_epi16(-1) : _mm256_setzero_si256();
    const __m256i wmax_v = _mm256_set1_epi16(wmax);
    const __m256i wmin_v = _mm256_set1_epi16(wmin);
    const __m256i all_ones = _mm256_set1_epi16(-1);
    for (unsigned c = 0; c < chunks; ++c) {
        std::int16_t *p = w + 1 + c * 16;
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        const std::uint16_t part =
            static_cast<std::uint16_t>(hist >> (c * 16));
        const __m256i bits =
            _mm256_set1_epi16(static_cast<short>(part));
        const __m256i select = _mm256_setr_epi16(
            1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6,
            1 << 7, static_cast<short>(1 << 8),
            static_cast<short>(1 << 9), static_cast<short>(1 << 10),
            static_cast<short>(1 << 11), static_cast<short>(1 << 12),
            static_cast<short>(1 << 13), static_cast<short>(1 << 14),
            static_cast<short>(static_cast<unsigned short>(1u << 15)));
        const __m256i bit_mask = _mm256_cmpeq_epi16(
            _mm256_and_si256(bits, select), select);
        // up lane-mask: bit == taken (both masks are 0/all-ones).
        const __m256i up =
            _mm256_xor_si256(_mm256_xor_si256(bit_mask, taken_v),
                             all_ones);
        // Saturation gates: may move up iff w < wmax, down iff
        // w > wmin.
        const __m256i can_up = _mm256_cmpgt_epi16(wmax_v, wv);
        const __m256i can_dn = _mm256_cmpgt_epi16(wv, wmin_v);
        const __m256i apply = _mm256_or_si256(
            _mm256_and_si256(up, can_up),
            _mm256_andnot_si256(up, can_dn));
        // delta: +1 on up lanes, -1 (all-ones) on down lanes; masking
        // with apply leaves gated lanes at 0.
        const __m256i one = _mm256_set1_epi16(1);
        const __m256i delta =
            _mm256_blendv_epi8(_mm256_set1_epi16(-1), one, up);
        const __m256i nw =
            _mm256_add_epi16(wv, _mm256_and_si256(delta, apply));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), nw);
    }
    for (unsigned i = chunks * 16; i < n; ++i) {
        bool bit = (hist >> i) & 1;
        adjustScalar(w[i + 1], bit == taken, wmax, wmin);
    }
}

__attribute__((target("avx2"))) ScanResult
scanAvx2(const std::uint8_t *cls, std::uint64_t begin,
         std::uint64_t end, bool definesInteresting)
{
    ScanResult r;
    std::uint64_t i = begin;
    const __m256i branch_v = _mm256_set1_epi8(classCondBranch);
    const __m256i uncond_v = _mm256_set1_epi8(classUncondControl);
    const __m256i define_v = _mm256_set1_epi8(classPredDefine);
    while (i + 32 <= end) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(cls + i));
        const std::uint32_t branches = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, branch_v)));
        const std::uint32_t unconds = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, uncond_v)));
        const std::uint32_t defines = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, define_v)));
        std::uint32_t stops = branches;
        if (definesInteresting)
            stops |= defines;
        if (stops) {
            const unsigned pos =
                static_cast<unsigned>(__builtin_ctz(stops));
            const std::uint32_t before =
                pos ? (std::uint32_t{1} << pos) - 1 : 0;
            r.uncond += __builtin_popcount(unconds & before);
            r.defines += __builtin_popcount(defines & before);
            r.next = i + pos;
            return r;
        }
        r.uncond += __builtin_popcount(unconds);
        r.defines += __builtin_popcount(defines);
        i += 32;
    }
    ScanResult tail = scanScalar(cls, i, end, definesInteresting);
    r.next = tail.next;
    r.uncond += tail.uncond;
    r.defines += tail.defines;
    return r;
}

__attribute__((target("avx2"))) CollectResult
collectAvx2(const std::uint8_t *cls, std::uint64_t begin,
            std::uint64_t end, bool definesInteresting,
            std::uint32_t *outBranches, std::uint32_t *outDefines,
            std::uint32_t *outUnconds)
{
    CollectResult r;
    std::uint64_t i = begin;
    const __m256i branch_v = _mm256_set1_epi8(classCondBranch);
    const __m256i uncond_v = _mm256_set1_epi8(classUncondControl);
    const __m256i define_v = _mm256_set1_epi8(classPredDefine);
    for (; i + 32 <= end; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(cls + i));
        const std::uint32_t unconds = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, uncond_v)));
        const std::uint32_t defines = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, define_v)));
        std::uint32_t branches = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, branch_v)));
        if (outUnconds) {
            std::uint32_t u = unconds;
            while (u) {
                outUnconds[r.uncond++] = static_cast<std::uint32_t>(
                    i + static_cast<unsigned>(__builtin_ctz(u)));
                u &= u - 1;
            }
        } else {
            r.uncond += __builtin_popcount(unconds);
        }
        while (branches) {
            outBranches[r.branches++] = static_cast<std::uint32_t>(
                i + static_cast<unsigned>(__builtin_ctz(branches)));
            branches &= branches - 1;
        }
        if (definesInteresting) {
            std::uint32_t d = defines;
            while (d) {
                outDefines[r.defines++] = static_cast<std::uint32_t>(
                    i + static_cast<unsigned>(__builtin_ctz(d)));
                d &= d - 1;
            }
        } else {
            r.defines += __builtin_popcount(defines);
        }
    }
    const CollectResult tail =
        collectScalar(cls, i, end, definesInteresting,
                      outBranches + r.branches,
                      definesInteresting ? outDefines + r.defines
                                         : nullptr,
                      outUnconds ? outUnconds + r.uncond : nullptr);
    r.branches += tail.branches;
    r.uncond += tail.uncond;
    r.defines += tail.defines;
    return r;
}

#endif // PABP_SIMD_X86

Level
detectLevel()
{
#if PABP_SIMD_X86
    if (const char *env = std::getenv("PABP_SIMD")) {
        if (std::strcmp(env, "scalar") == 0)
            return Level::Scalar;
        if (std::strcmp(env, "avx2") == 0 &&
            __builtin_cpu_supports("avx2"))
            return Level::Avx2;
        // Unknown or unavailable request: fall through to detection.
    }
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
    return Level::Scalar;
}

Level currentLevel = detectLevel();

} // anonymous namespace

Level
activeLevel()
{
    return currentLevel;
}

bool
avx2Available()
{
#if PABP_SIMD_X86
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

Level
forceLevel(Level level)
{
    if (level == Level::Avx2 && !avx2Available())
        level = Level::Scalar;
    currentLevel = level;
    return currentLevel;
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
    }
    return "?";
}

std::int32_t
perceptronDot(const std::int16_t *w, std::uint64_t hist, unsigned n)
{
#if PABP_SIMD_X86
    if (currentLevel == Level::Avx2)
        return dotAvx2(w, hist, n);
#endif
    return dotScalar(w, hist, n);
}

void
perceptronTrain(std::int16_t *w, std::uint64_t hist, unsigned n,
                bool taken, std::int16_t wmax, std::int16_t wmin)
{
#if PABP_SIMD_X86
    if (currentLevel == Level::Avx2) {
        trainAvx2(w, hist, n, taken, wmax, wmin);
        return;
    }
#endif
    trainScalar(w, hist, n, taken, wmax, wmin);
}

ScanResult
scanClasses(const std::uint8_t *cls, std::uint64_t begin,
            std::uint64_t end, bool definesInteresting)
{
#if PABP_SIMD_X86
    if (currentLevel == Level::Avx2)
        return scanAvx2(cls, begin, end, definesInteresting);
#endif
    return scanScalar(cls, begin, end, definesInteresting);
}

CollectResult
collectStops(const std::uint8_t *cls, std::uint64_t begin,
             std::uint64_t end, bool definesInteresting,
             std::uint32_t *outBranches, std::uint32_t *outDefines,
             std::uint32_t *outUnconds)
{
#if PABP_SIMD_X86
    if (currentLevel == Level::Avx2)
        return collectAvx2(cls, begin, end, definesInteresting,
                           outBranches, outDefines, outUnconds);
#endif
    return collectScalar(cls, begin, end, definesInteresting,
                         outBranches, outDefines, outUnconds);
}

} // namespace simd
} // namespace pabp
