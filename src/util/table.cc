#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace pabp {

Table::Table(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    pabp_assert(!header.empty());
}

void
Table::startRow()
{
    rows.emplace_back();
}

void
Table::cell(const std::string &text)
{
    pabp_assert(!rows.empty());
    pabp_assert(rows.back().size() < header.size());
    rows.back().push_back(text);
}

void
Table::cell(std::uint64_t v)
{
    cell(std::to_string(v));
}

void
Table::cell(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    cell(std::string(buf));
}

void
Table::percentCell(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    cell(std::string(buf));
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    return rows.at(row).at(col);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < header.size(); ++c) {
            const std::string &text = c < row.size() ? row[c] : "";
            os << " " << text
               << std::string(widths[c] - text.size(), ' ') << " |";
        }
        os << "\n";
    };

    print_row(header);
    os << "|";
    for (std::size_t c = 0; c < header.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << "\n";
    };
    print_row(header);
    for (const auto &row : rows)
        print_row(row);
}

} // namespace pabp
