#include "util/options.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace pabp {

void
Options::declare(const std::string &name, const std::string &default_value,
                 const std::string &help)
{
    pabp_assert(!decls.count(name));
    decls[name] = Decl{default_value, help};
    order.push_back(name);
}

Status
Options::tryParse(int argc, const char *const *argv,
                  bool &help_requested)
{
    help_requested = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(argv[0]);
            help_requested = true;
            return Status();
        }
        if (arg.rfind("--", 0) != 0)
            return Status(StatusCode::InvalidArgument,
                          "unexpected argument: " + arg);
        arg = arg.substr(2);

        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            bool next_is_value = i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0;
            if (next_is_value && decls.count(name)) {
                value = argv[++i];
            } else {
                value = "1"; // bare flag
            }
        }
        if (!decls.count(name))
            return Status(StatusCode::InvalidArgument,
                          "unknown option: --" + name);
        values[name] = value;
    }
    return Status();
}

bool
Options::parse(int argc, const char *const *argv)
{
    bool help_requested = false;
    Status status = tryParse(argc, argv, help_requested);
    if (!status.ok())
        pabp_fatal(status.message());
    return !help_requested;
}

std::string
Options::str(const std::string &name) const
{
    auto it = values.find(name);
    if (it != values.end())
        return it->second;
    auto d = decls.find(name);
    if (d == decls.end())
        pabp_fatal("undeclared option queried: " + name);
    return d->second.defaultValue;
}

std::int64_t
Options::integer(const std::string &name) const
{
    return std::strtoll(str(name).c_str(), nullptr, 0);
}

double
Options::real(const std::string &name) const
{
    return std::strtod(str(name).c_str(), nullptr);
}

bool
Options::flag(const std::string &name) const
{
    std::string v = str(name);
    return v == "1" || v == "true" || v == "yes";
}

void
Options::printHelp(const std::string &program) const
{
    std::printf("usage: %s [--option=value ...]\n\noptions:\n",
                program.c_str());
    for (const auto &name : order) {
        const Decl &d = decls.at(name);
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    d.help.c_str(), d.defaultValue.c_str());
    }
}

} // namespace pabp
