#include "util/logging.hh"

namespace pabp {

void
logMessage(const char *severity, const std::string &msg, const char *file,
           int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", severity, msg.c_str(), file,
                 line);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    logMessage("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    logMessage("fatal", msg, file, line);
    std::exit(1);
}

} // namespace pabp
