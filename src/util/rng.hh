/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * simulations. Every stochastic element of the repo draws from this
 * generator so that runs are exactly reproducible from a seed.
 */

#ifndef PABP_UTIL_RNG_HH
#define PABP_UTIL_RNG_HH

#include <cstdint>

namespace pabp {

/**
 * xorshift64* generator. Small, fast, and good enough for workload
 * synthesis; not for cryptography. A zero seed is remapped to a fixed
 * non-zero constant because the xorshift state must never be zero.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with the given probability in [0,1]. */
    bool
    chance(double probability)
    {
        if (probability <= 0.0)
            return false;
        if (probability >= 1.0)
            return true;
        return toUnit() < probability;
    }

    /** Uniform double in [0, 1). */
    double
    toUnit()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Reseed the generator. */
    void
    seed(std::uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ull;
    }

  private:
    std::uint64_t state;
};

} // namespace pabp

#endif // PABP_UTIL_RNG_HH
