/**
 * @file
 * Fixed-size worker pool with a bounded work queue - the execution
 * substrate of the parallel sweep runner (bench/sweep.hh).
 *
 * Design constraints, in order:
 *  - Bounded queue: submit() blocks while the queue is at capacity,
 *    so a producer enumerating a huge sweep grid can never get more
 *    than queueCapacity() tasks ahead of the workers (backpressure,
 *    not unbounded buffering).
 *  - Exception containment: a task that throws must not kill the
 *    pool or the process. The first escaped exception is captured
 *    and rethrown from drain(); later tasks still run. (The sweep
 *    layer converts its own failures to pabp::Status per cell and
 *    should never reach this backstop - it exists for bugs.)
 *  - No result plumbing: tasks write their results wherever they
 *    like (the sweep runner hands each task a slot index, which is
 *    what makes collection order deterministic). The pool only runs
 *    closures.
 */

#ifndef PABP_UTIL_THREAD_POOL_HH
#define PABP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pabp {

/** Number of workers to use for "as many as the machine has". */
unsigned defaultThreadCount();

class ThreadPool
{
  public:
    /**
     * Start @p threads workers. @p queue_capacity bounds the number
     * of submitted-but-not-started tasks; 0 picks twice the thread
     * count. @p threads must be at least 1.
     */
    explicit ThreadPool(unsigned threads, std::size_t queue_capacity = 0);

    /** Joins all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task, blocking while the queue is full. Must not be
     * called after drain() has begun on another thread, or from a
     * worker (a task submitting to its own full pool would deadlock
     * by design - the queue bound is a hard contract).
     */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first exception any task leaked (if any). The pool is
     * reusable afterwards.
     */
    void drain();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }
    std::size_t queueCapacity() const { return capacity; }

    /** Submitted-but-not-started tasks (diagnostics/tests). */
    std::size_t queueDepth() const;

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    mutable std::mutex mtx;
    std::condition_variable cvWork;  ///< workers: queue non-empty/stop
    std::condition_variable cvSpace; ///< producers: queue has room
    std::condition_variable cvIdle;  ///< drain(): all work finished
    std::size_t capacity;
    unsigned active = 0; ///< tasks currently executing
    bool stopping = false;
    std::exception_ptr firstError;
};

} // namespace pabp

#endif // PABP_UTIL_THREAD_POOL_HH
