/**
 * @file
 * Result-table formatting for the benchmark harnesses. Each experiment
 * binary builds a Table and prints it as aligned text (the paper-style
 * view) and optionally as CSV for downstream plotting.
 */

#ifndef PABP_UTIL_TABLE_HH
#define PABP_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pabp {

/** A simple row/column table of strings with helpers for numbers. */
class Table
{
  public:
    explicit Table(std::vector<std::string> column_names);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    void startRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &text);

    /** Append an integer cell. */
    void cell(std::uint64_t v);

    /** Append a floating cell with fixed decimals. */
    void cell(double v, int decimals = 3);

    /** Append a percentage cell ("12.34%") from a fraction in [0,1]. */
    void percentCell(double fraction, int decimals = 2);

    std::size_t numRows() const { return rows.size(); }
    std::size_t numCols() const { return header.size(); }

    /** Cell text by position (for tests). */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Print as an aligned, pipe-separated table. */
    void print(std::ostream &os) const;

    /** Print as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace pabp

#endif // PABP_UTIL_TABLE_HH
