/**
 * @file
 * Saturating counters, the basic storage element of every dynamic
 * branch predictor in this repo.
 */

#ifndef PABP_UTIL_SAT_COUNTER_HH
#define PABP_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace pabp {

/**
 * An n-bit up/down saturating counter. The counter predicts "taken"
 * when its value is in the upper half of its range (the conventional
 * MSB rule), so a 2-bit counter predicts taken for values 2 and 3.
 */
class SatCounter
{
  public:
    /**
     * @param num_bits Width in bits, 1..8.
     * @param initial Initial value; defaults to the weakly-not-taken
     *        value just below the taken threshold.
     */
    explicit SatCounter(unsigned num_bits = 2, int initial = -1)
        : bits(num_bits),
          maxValue(static_cast<std::uint8_t>((1u << num_bits) - 1)),
          value(0)
    {
        pabp_assert(num_bits >= 1 && num_bits <= 8);
        if (initial < 0)
            value = static_cast<std::uint8_t>((1u << num_bits) / 2 - 1);
        else
            value = static_cast<std::uint8_t>(initial) & maxValue;
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value < maxValue)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Train toward a branch outcome. */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    /** MSB-rule prediction: taken iff in the upper half of the range. */
    bool predictTaken() const { return value >= (maxValue + 1u) / 2; }

    /** True when the counter is pinned at either extreme. */
    bool isSaturated() const { return value == 0 || value == maxValue; }

    std::uint8_t raw() const { return value; }

    /** Restore a checkpointed value; masked into range. */
    void setRaw(std::uint8_t v) { value = v & maxValue; }

    unsigned numBits() const { return bits; }

  private:
    unsigned bits;
    std::uint8_t maxValue;
    std::uint8_t value;
};

} // namespace pabp

#endif // PABP_UTIL_SAT_COUNTER_HH
