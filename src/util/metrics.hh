/**
 * @file
 * Structured metric export and import.
 *
 * MetricsExporter serialises a run's statistics - StatGroup
 * snapshots, Histograms, free-standing counters and numeric tables -
 * under stable dotted names into a versioned JSON document (and a
 * flat CSV view). The JSON layout is the canonical machine-readable
 * output of every bench binary; its byte-for-byte stability (sorted
 * keys, fixed number formatting) is part of the determinism contract
 * in docs/PARALLEL.md and is pinned by a golden test.
 *
 * Document shape (schema "pabp.metrics", version 1):
 *
 *   {
 *     "schema": "pabp.metrics",
 *     "version": 1,
 *     "metrics": { "<dotted name>": <number or string>, ... },
 *     "tables": {
 *       "<table>": { "columns": [...], "rows": [[...], ...] }
 *     }
 *   }
 *
 * Schema version policy (docs/OBSERVABILITY.md): adding new metric
 * names or tables is backwards-compatible and does NOT bump the
 * version; renaming or re-typing an existing key, or changing the
 * document shape, bumps it. Consumers must ignore names they do not
 * know.
 *
 * parseJson() is the matching reader: a small, strict JSON parser
 * covering the subset this exporter emits (objects, arrays, strings,
 * numbers, booleans, null), used by the pabp-stats diff tool and the
 * round-trip tests.
 */

#ifndef PABP_UTIL_METRICS_HH
#define PABP_UTIL_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

inline constexpr char kMetricsSchemaName[] = "pabp.metrics";
inline constexpr std::uint32_t kMetricsSchemaVersion = 1;

/** Builds and writes one versioned metrics document. */
class MetricsExporter
{
  public:
    /** Set a counter-valued metric. */
    void setInt(const std::string &name, std::uint64_t v);

    /** Set a real-valued metric (rates, MPKI). */
    void setReal(const std::string &name, double v);

    /** Set a string-valued metric (workload id, predictor name). */
    void setText(const std::string &name, const std::string &v);

    /** Snapshot every stat in @p group under @p prefix. */
    void addGroup(const StatGroup &group, const std::string &prefix = "");

    /** Export a histogram: count, mean, per-bucket and overflow
     *  counts under "<name>.*". */
    void addHistogram(const std::string &name, const Histogram &h);

    /** Declare a numeric table; rows are appended in insertion
     *  order. Each row must match the column count. */
    void declareTable(const std::string &name,
                      std::vector<std::string> columns);
    void addRow(const std::string &name,
                std::vector<std::uint64_t> row);

    /** Write the JSON document. Byte-stable: keys sorted, fixed
     *  formatting. */
    void writeJson(std::ostream &os) const;

    /** Flat CSV: "name,value" per metric, then each table. */
    void writeCsv(std::ostream &os) const;

    /** writeJson() to @p path via write-then-rename (a crash cannot
     *  leave a torn half-document behind). */
    Status writeJsonFile(const std::string &path) const;

    std::size_t numMetrics() const { return metrics.size(); }

  private:
    struct Value
    {
        enum class Kind : std::uint8_t { Int, Real, Text };
        Kind kind = Kind::Int;
        std::uint64_t i = 0;
        double d = 0.0;
        std::string s;
    };

    struct TableData
    {
        std::vector<std::string> columns;
        std::vector<std::vector<std::uint64_t>> rows;
    };

    std::map<std::string, Value> metrics;
    std::map<std::string, TableData> tables;
};

/**
 * A parsed JSON value. Numbers keep both views: integral JSON numbers
 * (no '.', 'e') are exact in @ref intValue up to uint64 range, and
 * every number is available as @ref number.
 */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null, Bool, Number, String, Array, Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::uint64_t intValue = 0;
    bool isInt = false;
    std::string text;
    std::vector<JsonValue> items;                          ///< Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/** Strict parse of a complete JSON document. */
Expected<JsonValue> parseJson(const std::string &text);

/**
 * Diff two parsed pabp.metrics documents: every metric present in
 * either (missing -> 0 / ""), and every table row keyed by its first
 * column (the branch PC for the "branches" table), counter by
 * counter. Writes a human-readable report to @p os; returns the
 * number of differing entries. @p top_k bounds the per-table rows
 * printed (0 = all); suppressed rows are summarised, never silently
 * dropped.
 */
std::size_t diffMetrics(const JsonValue &a, const JsonValue &b,
                        std::ostream &os, std::size_t top_k = 0);

} // namespace pabp

#endif // PABP_UTIL_METRICS_HH
