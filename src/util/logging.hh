/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - internal invariant violated; aborts.
 * fatal()  - user/configuration error; exits with status 1.
 * warn()   - non-fatal diagnostic on stderr.
 */

#ifndef PABP_UTIL_LOGGING_HH
#define PABP_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pabp {

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *severity, const std::string &msg,
                const char *file, int line);

/** Abort with a message; use for violated internal invariants. */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/** Exit(1) with a message; use for user/config errors. */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

} // namespace pabp

#define pabp_panic(msg) ::pabp::panicImpl((msg), __FILE__, __LINE__)
#define pabp_fatal(msg) ::pabp::fatalImpl((msg), __FILE__, __LINE__)
#define pabp_warn(msg) ::pabp::logMessage("warn", (msg), __FILE__, __LINE__)

/**
 * Force-inline for the replay hot path's per-event helpers. The
 * inliner treats them as ordinary out-of-line candidates, but a call
 * frame (spilling the loop's live registers) costs as much as the
 * helper's own handful of ALU ops when it runs once per dynamic
 * event; see docs/PERF.md.
 */
#if defined(__GNUC__) || defined(__clang__)
#define PABP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define PABP_ALWAYS_INLINE inline
#endif

/**
 * Invariant check that stays on in release builds. Simulator results
 * silently corrupted by a skipped assert are worse than the cost of
 * the branch.
 */
#define pabp_assert(cond)                                                   \
    do {                                                                    \
        if (!(cond))                                                        \
            pabp_panic("assertion failed: " #cond);                        \
    } while (0)

#endif // PABP_UTIL_LOGGING_HH
