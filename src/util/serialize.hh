/**
 * @file
 * Byte-level state serialisation used by the PABPTRC2 trace format and
 * the checkpoint files. A StateSink writes PODs to a stream while
 * folding every byte into a running CRC-32; a StateSource reads them
 * back, returning typed Status errors (Truncated on a short read,
 * IoError when the underlying stream itself failed) instead of
 * panicking. Multi-byte values travel in host byte order; like the
 * seed trace format, the on-disk artifacts are declared little-endian.
 */

#ifndef PABP_UTIL_SERIALIZE_HH
#define PABP_UTIL_SERIALIZE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/crc32.hh"
#include "util/sat_counter.hh"
#include "util/status.hh"

namespace pabp {

/** CRC-accumulating POD writer over an ostream. */
class StateSink
{
  public:
    explicit StateSink(std::ostream &os) : out(os) {}

    void
    writeBytes(const void *data, std::size_t len)
    {
        out.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(len));
        crc.update(data, len);
        total += len;
    }

    template <typename T>
    void
    writePod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(&value, sizeof(T));
    }

    void writeU8(std::uint8_t v) { writePod(v); }
    void writeU32(std::uint32_t v) { writePod(v); }
    void writeU64(std::uint64_t v) { writePod(v); }
    void writeI64(std::int64_t v) { writePod(v); }
    void writeBool(bool v) { writeU8(v ? 1 : 0); }

    void
    writeString(const std::string &s)
    {
        writeU64(s.size());
        writeBytes(s.data(), s.size());
    }

    template <typename T>
    void
    writePodVector(const std::vector<T> &vec)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeU64(vec.size());
        writeBytes(vec.data(), vec.size() * sizeof(T));
    }

    /** vector<bool> has no contiguous storage; one byte per element. */
    void
    writeBoolVector(const std::vector<bool> &vec)
    {
        writeU64(vec.size());
        for (bool b : vec)
            writeBool(b);
    }

    /** Counter *values* only; widths are configuration, not state. */
    void
    writeCounters(const std::vector<SatCounter> &counters)
    {
        writeU64(counters.size());
        for (const SatCounter &c : counters)
            writeU8(c.raw());
    }

    /** Finalised CRC of everything written so far. */
    std::uint32_t crc32() const { return crc.value(); }
    void resetCrc() { crc.reset(); }

    std::uint64_t bytesWritten() const { return total; }
    bool good() const { return static_cast<bool>(out); }

  private:
    std::ostream &out;
    Crc32 crc;
    std::uint64_t total = 0;
};

/** CRC-accumulating POD reader with typed short-read errors. */
class StateSource
{
  public:
    explicit StateSource(std::istream &is) : in(is) {}

    Status
    readBytes(void *data, std::size_t len)
    {
        in.read(static_cast<char *>(data),
                static_cast<std::streamsize>(len));
        if (static_cast<std::size_t>(in.gcount()) != len || in.bad()) {
            if (in.bad())
                return Status(StatusCode::IoError,
                              "read failure on input stream");
            return Status(StatusCode::Truncated,
                          "stream ended " + std::to_string(len) +
                              " byte(s) short");
        }
        crc.update(data, len);
        total += len;
        return Status();
    }

    template <typename T>
    Status
    readPod(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return readBytes(&value, sizeof(T));
    }

    Status
    readBool(bool &value)
    {
        std::uint8_t raw = 0;
        PABP_TRY(readPod(raw));
        value = raw != 0;
        return Status();
    }

    /** @param max_len Sanity bound so a corrupt length cannot trigger
     *         a multi-gigabyte allocation before the CRC check. */
    Status
    readString(std::string &s, std::uint64_t max_len = 1u << 20)
    {
        std::uint64_t len = 0;
        PABP_TRY(readPod(len));
        if (len > max_len)
            return Status(StatusCode::Corrupt,
                          "string length " + std::to_string(len) +
                              " exceeds bound");
        s.resize(len);
        return readBytes(s.data(), len);
    }

    /**
     * Read a POD vector whose size must equal @p expected (state for
     * a structure whose geometry is fixed by configuration). A
     * different stored size means the artifact was produced by a
     * differently-configured object.
     */
    template <typename T>
    Status
    readPodVector(std::vector<T> &vec, std::uint64_t expected)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t count = 0;
        PABP_TRY(readPod(count));
        if (count != expected)
            return Status(StatusCode::InvalidArgument,
                          "stored size " + std::to_string(count) +
                              " != configured size " +
                              std::to_string(expected));
        vec.resize(count);
        return readBytes(vec.data(), count * sizeof(T));
    }

    /** Variable-length vector (a call stack, say), with a sanity
     *  bound against corrupt counts. */
    template <typename T>
    Status
    readPodVectorBounded(std::vector<T> &vec, std::uint64_t max_count)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t count = 0;
        PABP_TRY(readPod(count));
        if (count > max_count)
            return Status(StatusCode::Corrupt,
                          "stored count " + std::to_string(count) +
                              " exceeds bound " +
                              std::to_string(max_count));
        vec.resize(count);
        return readBytes(vec.data(), count * sizeof(T));
    }

    Status
    readBoolVector(std::vector<bool> &vec, std::uint64_t expected)
    {
        std::uint64_t count = 0;
        PABP_TRY(readPod(count));
        if (count != expected)
            return Status(StatusCode::InvalidArgument,
                          "stored size " + std::to_string(count) +
                              " != configured size " +
                              std::to_string(expected));
        vec.resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            bool b = false;
            PABP_TRY(readBool(b));
            vec[i] = b;
        }
        return Status();
    }

    Status
    readCounters(std::vector<SatCounter> &counters)
    {
        std::uint64_t count = 0;
        PABP_TRY(readPod(count));
        if (count != counters.size())
            return Status(StatusCode::InvalidArgument,
                          "counter table size " + std::to_string(count) +
                              " != configured size " +
                              std::to_string(counters.size()));
        for (SatCounter &c : counters) {
            std::uint8_t raw = 0;
            PABP_TRY(readPod(raw));
            c.setRaw(raw);
        }
        return Status();
    }

    std::uint32_t crc32() const { return crc.value(); }
    void resetCrc() { crc.reset(); }

    std::uint64_t bytesRead() const { return total; }

  private:
    std::istream &in;
    Crc32 crc;
    std::uint64_t total = 0;
};

} // namespace pabp

#endif // PABP_UTIL_SERIALIZE_HH
