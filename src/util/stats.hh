/**
 * @file
 * Lightweight statistics primitives: named scalar counters grouped in
 * a registry, ratio formatting, and fixed-bucket histograms. Modeled
 * loosely on gem5's stats package but kept deliberately small.
 */

#ifndef PABP_UTIL_STATS_HH
#define PABP_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pabp {

/** A named monotonically adjustable scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t n) { val += n; return *this; }
    void reset() { val = 0; }

    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/**
 * A histogram with uniform integer buckets plus an overflow bucket.
 * Used for e.g. predicate define-to-branch distance distributions.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets Number of uniform buckets.
     * @param bucket_width Width of each bucket (>= 1).
     */
    Histogram(std::size_t num_buckets, std::uint64_t bucket_width);

    /** Record one sample. */
    void sample(std::uint64_t value);

    std::uint64_t count() const { return total; }
    double mean() const;
    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }
    std::uint64_t overflowCount() const { return overflow; }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t bucketWidth() const { return width; }

    /** Reset all buckets and counts. */
    void reset();

    /** Print "lo-hi: count" lines. */
    void print(std::ostream &os, const std::string &name) const;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t width;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
};

/**
 * A registry of named scalar statistics. Components register their
 * counters by dotted name ("fetch.branches"); harnesses dump them all.
 */
class StatGroup
{
  public:
    /** Fetch-or-create a scalar by name. References stay valid. */
    Scalar &scalar(const std::string &name);

    /** Value of a named scalar, 0 when absent. */
    std::uint64_t value(const std::string &name) const;

    /** a/b as a double; 0 when b is 0. */
    static double ratio(std::uint64_t a, std::uint64_t b);

    /** Dump "name value" lines sorted by name. */
    void print(std::ostream &os) const;

    /** Reset all scalars to zero. */
    void reset();

    const std::map<std::string, Scalar> &all() const { return scalars; }

  private:
    std::map<std::string, Scalar> scalars;
};

} // namespace pabp

#endif // PABP_UTIL_STATS_HH
