/**
 * @file
 * Statistics primitives: named scalar counters and callback-backed
 * gauges grouped in a registry, ratio formatting, and fixed-bucket
 * histograms. Modeled loosely on gem5's stats package but kept
 * deliberately small.
 *
 * The registry (StatGroup) is the metrics backbone: components
 * register their counters under stable dotted names
 * ("engine.all.branches", "sfpf.squashes"), harnesses snapshot the
 * whole group for export (util/metrics.hh), and reset() returns every
 * registered component to a fresh-run state - including counters the
 * component keeps privately, via reset hooks.
 */

#ifndef PABP_UTIL_STATS_HH
#define PABP_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pabp {

/** A named monotonically adjustable scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t n) { val += n; return *this; }
    void reset() { val = 0; }

    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/**
 * A histogram with uniform integer buckets plus an overflow bucket.
 * Used for e.g. predicate define-to-branch distance distributions.
 *
 * Bucket i covers [i*width, (i+1)*width - 1]; a sample exactly at a
 * bucket's lower boundary (value == i*width) lands in bucket i, and
 * the first value past the last bucket (num_buckets*width) lands in
 * overflow. mean() over zero samples is 0. Both edge cases are pinned
 * by tests/test_stats.cc.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets Number of uniform buckets.
     * @param bucket_width Width of each bucket (>= 1).
     */
    Histogram(std::size_t num_buckets, std::uint64_t bucket_width);

    /** Record one sample. */
    void sample(std::uint64_t value);

    std::uint64_t count() const { return total; }
    double mean() const;
    std::uint64_t sumOfSamples() const { return sum; }
    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }
    std::uint64_t overflowCount() const { return overflow; }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t bucketWidth() const { return width; }

    /** Reset all buckets and counts. */
    void reset();

    /** Print "lo-hi: count" lines. */
    void print(std::ostream &os, const std::string &name) const;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t width;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
};

/**
 * A registry of named statistics. Components register their counters
 * by dotted name ("fetch.branches") - either as Scalars owned by the
 * group, or as gauges: callbacks reading a counter the component
 * itself owns (and possibly checkpoints). Harnesses snapshot or dump
 * them all.
 *
 * Gauge callbacks capture component pointers; the group must not
 * outlive the components registered into it.
 */
class StatGroup
{
  public:
    using Gauge = std::function<std::uint64_t()>;

    /** Fetch-or-create a scalar by name. References stay valid. */
    Scalar &scalar(const std::string &name);

    /**
     * Register a callback-backed stat. The component keeps ownership
     * of the underlying counter; the group reads it on demand.
     * Re-registering a name replaces the callback (a component
     * re-registered after reconstruction must not leave a dangling
     * capture behind).
     */
    void gauge(const std::string &name, Gauge fn);

    /**
     * Register a hook run by reset(). Components whose counters live
     * behind gauges add one so that resetting the group really
     * zeroes every registered statistic, not just the owned scalars -
     * the reset()/resetStats() symmetry the sweep layer depends on.
     */
    void onReset(std::function<void()> hook);

    /** Value of a named scalar or gauge, 0 when absent. */
    std::uint64_t value(const std::string &name) const;

    /** Is @p name a registered scalar or gauge? */
    bool has(const std::string &name) const;

    /** a/b as a double; 0 when b is 0. */
    static double ratio(std::uint64_t a, std::uint64_t b);

    /** All current values (scalars + gauges), sorted by name. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Dump "name value" lines sorted by name. */
    void print(std::ostream &os) const;

    /** Zero all scalars and run every reset hook. */
    void reset();

    const std::map<std::string, Scalar> &all() const { return scalars; }
    std::size_t numGauges() const { return gauges.size(); }

  private:
    std::map<std::string, Scalar> scalars;
    std::map<std::string, Gauge> gauges;
    std::vector<std::function<void()>> resetHooks;
};

} // namespace pabp

#endif // PABP_UTIL_STATS_HH
