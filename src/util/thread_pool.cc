#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace pabp {

unsigned
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : capacity(queue_capacity ? queue_capacity
                              : static_cast<std::size_t>(threads) * 2)
{
    pabp_assert(threads >= 1);
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    pabp_assert(task);
    {
        std::unique_lock<std::mutex> lock(mtx);
        cvSpace.wait(lock,
                     [this] { return queue.size() < capacity; });
        queue.push_back(std::move(task));
    }
    cvWork.notify_one();
}

void
ThreadPool::drain()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mtx);
        cvIdle.wait(lock,
                    [this] { return queue.empty() && active == 0; });
        error = firstError;
        firstError = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return queue.size();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvWork.wait(lock,
                        [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, nothing left to run
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        cvSpace.notify_one();
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mtx);
            if (!firstError)
                firstError = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mtx);
            --active;
            if (queue.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace pabp
