#include "util/stats.hh"

#include "util/logging.hh"

namespace pabp {

Histogram::Histogram(std::size_t num_buckets, std::uint64_t bucket_width)
    : buckets(num_buckets, 0), width(bucket_width)
{
    pabp_assert(num_buckets > 0 && bucket_width > 0);
}

void
Histogram::sample(std::uint64_t value)
{
    // value == i*width belongs to bucket i (lower boundary closed);
    // the first value past the last bucket goes to overflow.
    std::size_t idx = static_cast<std::size_t>(value / width);
    if (idx < buckets.size())
        ++buckets[idx];
    else
        ++overflow;
    ++total;
    sum += value;
}

double
Histogram::mean() const
{
    return total ? static_cast<double>(sum) / static_cast<double>(total)
                 : 0.0;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    overflow = 0;
    total = 0;
    sum = 0;
}

void
Histogram::print(std::ostream &os, const std::string &name) const
{
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        os << name << "[" << i * width << "-" << ((i + 1) * width - 1)
           << "] " << buckets[i] << "\n";
    }
    os << name << "[overflow] " << overflow << "\n";
}

Scalar &
StatGroup::scalar(const std::string &name)
{
    pabp_assert(gauges.find(name) == gauges.end());
    return scalars[name];
}

void
StatGroup::gauge(const std::string &name, Gauge fn)
{
    pabp_assert(fn && scalars.find(name) == scalars.end());
    gauges[name] = std::move(fn);
}

void
StatGroup::onReset(std::function<void()> hook)
{
    pabp_assert(hook);
    resetHooks.push_back(std::move(hook));
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = scalars.find(name);
    if (it != scalars.end())
        return it->second.value();
    auto git = gauges.find(name);
    return git == gauges.end() ? 0 : git->second();
}

bool
StatGroup::has(const std::string &name) const
{
    return scalars.find(name) != scalars.end() ||
        gauges.find(name) != gauges.end();
}

double
StatGroup::ratio(std::uint64_t a, std::uint64_t b)
{
    return b ? static_cast<double>(a) / static_cast<double>(b) : 0.0;
}

std::map<std::string, std::uint64_t>
StatGroup::snapshot() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, stat] : scalars)
        out.emplace(name, stat.value());
    for (const auto &[name, fn] : gauges)
        out.emplace(name, fn());
    return out;
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto &[name, v] : snapshot())
        os << name << " " << v << "\n";
}

void
StatGroup::reset()
{
    for (auto &[name, stat] : scalars)
        stat.reset();
    for (const auto &hook : resetHooks)
        hook();
}

} // namespace pabp
