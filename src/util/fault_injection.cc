#include "util/fault_injection.hh"

#include <ios>
#include <utility>

namespace pabp {

std::string
applyFault(std::string bytes, const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultSpec::Kind::None:
      case FaultSpec::Kind::FailRead:
        break;
      case FaultSpec::Kind::BitFlip:
        if (spec.offset < bytes.size())
            bytes[spec.offset] ^=
                static_cast<char>(1u << (spec.bit & 7));
        break;
      case FaultSpec::Kind::Truncate:
        if (spec.offset < bytes.size())
            bytes.resize(spec.offset);
        break;
    }
    return bytes;
}

FaultyStreambuf::FaultyStreambuf(std::string bytes, FaultSpec spec)
    : data(applyFault(std::move(bytes), spec)),
      failAtEnd(spec.kind == FaultSpec::Kind::FailRead)
{
    if (failAtEnd && spec.offset < data.size())
        data.resize(spec.offset);
    setg(data.data(), data.data(), data.data() + data.size());
}

FaultyStreambuf::int_type
FaultyStreambuf::underflow()
{
    // All buffered data has been consumed. A FailRead fault now
    // behaves like the device erroring out: istream catches the
    // exception and sets badbit (its exception mask is goodbit by
    // default), which readers must report as IoError - distinct from
    // the eof a Truncate fault produces.
    if (failAtEnd)
        throw std::ios_base::failure("injected I/O failure");
    return traits_type::eof();
}

} // namespace pabp
