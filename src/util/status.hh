/**
 * @file
 * Recoverable error handling: pabp::Status and pabp::Expected<T>.
 *
 * The gem5-style pabp_panic / pabp_fatal discipline (util/logging.hh)
 * terminates the process, which is the right answer for violated
 * internal invariants but makes the library unusable as an embedded
 * component when the error is *environmental*: a truncated trace file,
 * a corrupt checkpoint, a bad predictor name from a config file.
 * Recoverable surfaces return Status / Expected<T> instead; pabp_fatal
 * survives only as a thin shim at CLI entry points (examples/, bench/)
 * that converts a Status into an exit(1). See docs/ROBUSTNESS.md.
 */

#ifndef PABP_UTIL_STATUS_HH
#define PABP_UTIL_STATUS_HH

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/logging.hh"

namespace pabp {

/** Coarse error taxonomy shared by all recoverable surfaces. */
enum class StatusCode : std::uint8_t
{
    Ok,
    BadMagic,         ///< file/stream is not the expected artifact
    VersionMismatch,  ///< recognised artifact, unsupported version
    ChecksumMismatch, ///< CRC-protected section failed verification
    Truncated,        ///< stream ended before the artifact did
    IoError,          ///< the underlying stream itself failed
    Corrupt,          ///< structurally invalid content (in-range CRC)
    ParseError,       ///< malformed textual input (assembler, options)
    InvalidArgument,  ///< caller-supplied value out of contract
    NotFound,         ///< named entity does not exist
    Unsupported,      ///< valid request this build cannot honour
    DeadlineExceeded, ///< watchdog reaped a run that overran its budget
};

/** Stable name for a status code ("Truncated", ...). */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "Ok";
      case StatusCode::BadMagic: return "BadMagic";
      case StatusCode::VersionMismatch: return "VersionMismatch";
      case StatusCode::ChecksumMismatch: return "ChecksumMismatch";
      case StatusCode::Truncated: return "Truncated";
      case StatusCode::IoError: return "IoError";
      case StatusCode::Corrupt: return "Corrupt";
      case StatusCode::ParseError: return "ParseError";
      case StatusCode::InvalidArgument: return "InvalidArgument";
      case StatusCode::NotFound: return "NotFound";
      case StatusCode::Unsupported: return "Unsupported";
      case StatusCode::DeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
}

/** A recoverable error (or success). Cheap to copy on the Ok path. */
class [[nodiscard]] Status
{
  public:
    /** Default-constructed status is success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : statusCode(code), messageText(std::move(message))
    {
        pabp_assert(code != StatusCode::Ok);
    }

    bool ok() const { return statusCode == StatusCode::Ok; }
    StatusCode code() const { return statusCode; }
    const std::string &message() const { return messageText; }

    /** "Truncated: trace ended inside the event section". */
    std::string
    toString() const
    {
        if (ok())
            return "Ok";
        return std::string(statusCodeName(statusCode)) + ": " +
            messageText;
    }

    bool operator==(const Status &other) const = default;

  private:
    StatusCode statusCode = StatusCode::Ok;
    std::string messageText;
};

/** Shorthand constructors so call sites stay one line. */
inline Status
statusError(StatusCode code, std::string message)
{
    return Status(code, std::move(message));
}

/**
 * A value or a Status. The accessor contract is assert-checked:
 * reading value() of an error (or status() of a success) is a
 * programming bug, not a recoverable condition.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    /** Forwarding value constructor, so a derived-class
     *  unique_ptr (say) converts in one step. */
    template <typename U = T,
              typename = std::enable_if_t<
                  std::is_constructible_v<T, U &&> &&
                  !std::is_same_v<std::decay_t<U>, Expected> &&
                  !std::is_same_v<std::decay_t<U>, Status>>>
    Expected(U &&value) : payload(std::in_place_index<0>,
                                  std::forward<U>(value))
    {}

    Expected(Status error) : payload(std::move(error))
    {
        pabp_assert(!std::get<Status>(payload).ok());
    }

    bool ok() const { return std::holds_alternative<T>(payload); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        pabp_assert(ok());
        return std::get<T>(payload);
    }

    const T &
    value() const
    {
        pabp_assert(ok());
        return std::get<T>(payload);
    }

    const Status &
    status() const
    {
        static const Status okStatus;
        if (ok())
            return okStatus;
        return std::get<Status>(payload);
    }

  private:
    std::variant<T, Status> payload;
};

} // namespace pabp

/** Propagate a non-Ok Status to the caller. */
#define PABP_TRY(expr)                                                      \
    do {                                                                    \
        ::pabp::Status pabp_try_status_ = (expr);                           \
        if (!pabp_try_status_.ok())                                         \
            return pabp_try_status_;                                        \
    } while (0)

#endif // PABP_UTIL_STATUS_HH
