#include "pipeline/pipeline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pabp {

Pipeline::Pipeline(PredictionEngine &engine_, PipelineConfig config)
    : engine(engine_), cfg(config), icache(config.icache),
      dcache(config.dcache), l2(config.l2)
{
    pabp_assert(cfg.issueWidth >= 1);
    // The engine owns the BTB/RAS and reports target outcomes through
    // ProcessResult; an engine without target modelling would leave
    // every taken-branch bubble at the optimistic minimum.
    pabp_assert(engine.config().modelTargets);
}

std::uint64_t
Pipeline::execLatency(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    switch (inst.op) {
      case Opcode::Mul:
        return cfg.mulLatency;
      case Opcode::Div:
        return cfg.divLatency;
      case Opcode::Load:
      case Opcode::Store: {
        if (!dyn.guard)
            return cfg.aluLatency; // squashed access, address only
        auto addr = static_cast<std::uint64_t>(dyn.effAddr);
        bool hit = dcache.access(addr);
        bool l2_hit = true;
        if (!hit) {
            ++pipeStats.dcacheMisses;
            if (cfg.enableL2) {
                l2_hit = l2.access(addr);
                if (!l2_hit)
                    ++pipeStats.l2Misses;
            }
        }
        if (inst.op == Opcode::Load) {
            if (hit)
                return cfg.loadHitLatency;
            return l2_hit ? cfg.loadMissLatency : cfg.memoryLatency;
        }
        return cfg.aluLatency; // stores retire via the write buffer
      }
      default:
        return cfg.aluLatency;
    }
}

std::uint64_t
Pipeline::operandsReady(const DynInst &dyn) const
{
    const Inst &inst = *dyn.inst;
    std::uint64_t ready = 0;
    auto need_gpr = [&](unsigned reg) {
        ready = std::max(ready, regReady[reg]);
    };

    if (inst.isGuarded() && inst.qp != 0)
        ready = std::max(ready, predReady[inst.qp]);

    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Cmp:
        need_gpr(inst.src1);
        if (!inst.hasImm)
            need_gpr(inst.src2);
        break;
      case Opcode::Mov:
        if (!inst.hasImm)
            need_gpr(inst.src1);
        break;
      case Opcode::Load:
        need_gpr(inst.src1);
        break;
      case Opcode::Store:
        need_gpr(inst.src1);
        need_gpr(inst.src2);
        break;
      default:
        break;
    }
    return ready;
}

void
Pipeline::issueOne(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;

    // Instruction fetch: a line miss delays availability. In the
    // unified L2, instruction lines live in a disjoint address space
    // (high bit set) so they never falsely share data lines.
    if (!icache.access(dyn.pc)) {
        ++pipeStats.icacheMisses;
        unsigned penalty = cfg.icacheMissPenalty;
        if (cfg.enableL2 &&
            !l2.access(static_cast<std::uint64_t>(dyn.pc) |
                       (std::uint64_t{1} << 40))) {
            ++pipeStats.l2Misses;
            penalty = cfg.memoryLatency;
        }
        fetchReady = std::max(fetchReady, cycle) + penalty;
    }

    std::uint64_t earliest = std::max(fetchReady, operandsReady(dyn));
    if (earliest > cycle) {
        cycle = earliest;
        slotsUsed = 0;
    }
    if (slotsUsed >= cfg.issueWidth) {
        ++cycle;
        slotsUsed = 0;
    }
    ++slotsUsed;

    std::uint64_t done = cycle + execLatency(dyn);

    // Destination readiness (only architecturally performed writes).
    if (dyn.guard && inst.dst != 0 &&
        (inst.op == Opcode::Load || inst.op == Opcode::Mov ||
         (inst.op >= Opcode::Add && inst.op <= Opcode::Shr))) {
        regReady[inst.dst] = done;
    }
    for (unsigned i = 0; i < dyn.numPredWrites; ++i)
        predReady[dyn.predWrites[i].reg] = done;

    // Control flow: prediction outcome drives the front end. Both
    // squash kinds need no separate handling here: an SFPF squash
    // (result.squashed) is a certain not-taken prediction and never
    // mispredicts, and a wrong speculative squash
    // (result.specSquashed) already surfaces as mispredicted - the
    // full restart below is exactly its penalty.
    // The engine performs the BTB probes and RAS pops itself
    // (EngineConfig::modelTargets) and reports the outcomes; this
    // model only converts them into front-end bubbles.
    ProcessResult result = engine.process(dyn);
    if (result.condBranch && result.mispredicted) {
        std::uint64_t resolve = cycle + 1;
        std::uint64_t restart = resolve + cfg.mispredictPenalty;
        pipeStats.mispredictStallCycles += restart - fetchReady;
        fetchReady = std::max(fetchReady, restart);
    } else if (result.rasReturn) {
        // Return targets come from the return address stack; a stale
        // or underflowed RAS costs a full front-end restart.
        if (result.rasCorrect) {
            ++pipeStats.rasHits;
            fetchReady = std::max(fetchReady, cycle + cfg.takenBubble);
        } else {
            ++pipeStats.rasMisses;
            fetchReady = std::max(
                fetchReady, cycle + 1 + cfg.mispredictPenalty);
        }
    } else if (dyn.isControl && dyn.taken) {
        // Correctly predicted (or unconditional) taken transfer:
        // redirect bubble, larger when the BTB lacked the target.
        unsigned bubble = cfg.takenBubble;
        if (result.targetMiss) {
            ++pipeStats.btbMisses;
            bubble += cfg.btbMissPenalty;
        }
        fetchReady = std::max(fetchReady, cycle + bubble);
    }

    ++pipeStats.insts;
    pipeStats.cycles = std::max(pipeStats.cycles, done);
}

const PipelineStats &
Pipeline::run(Emulator &emu, std::uint64_t max_insts)
{
    DynInst dyn;
    std::uint64_t processed = 0;
    while (processed < max_insts && emu.step(dyn)) {
        issueOne(dyn);
        ++processed;
    }
    pipeStats.cycles = std::max(pipeStats.cycles, cycle + 1);
    return pipeStats;
}

} // namespace pabp
