/**
 * @file
 * Trace-driven in-order EPIC pipeline timing model.
 *
 * The golden emulator supplies the committed instruction stream; this
 * model charges cycles for it the way a wide in-order (Itanium-like)
 * machine would: W-wide issue, scoreboarded operand readiness with
 * per-class latencies, guarded instructions waiting on their
 * qualifying predicate, I/D cache latencies, BTB-guided redirects for
 * taken branches, and a front-end refill penalty on every direction
 * mispredict reported by the prediction engine. Predicated-false
 * instructions still consume issue slots (the cost predication trades
 * against mispredicts), but do not access memory or write registers.
 */

#ifndef PABP_PIPELINE_PIPELINE_HH
#define PABP_PIPELINE_PIPELINE_HH

#include <cstdint>

#include "core/engine.hh"
#include "mem/cache.hh"
#include "sim/emulator.hh"

namespace pabp {

/** Pipeline configuration. */
struct PipelineConfig
{
    unsigned issueWidth = 6;
    /** Front-end refill cycles after a direction mispredict. */
    unsigned mispredictPenalty = 8;
    /** Redirect bubble for a correctly-predicted taken branch that
     *  hits in the BTB. */
    unsigned takenBubble = 1;
    /** Extra bubble when a taken branch misses the BTB. */
    unsigned btbMissPenalty = 3;

    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned divLatency = 12;
    unsigned loadHitLatency = 2;
    unsigned loadMissLatency = 14;
    unsigned icacheMissPenalty = 6;

    CacheConfig icache{7, 2, 3};  ///< 8 KiB equivalent
    CacheConfig dcache{7, 4, 3};  ///< 16 KiB equivalent

    /** Optional unified L2 behind both L1s. When enabled, an L1 miss
     *  that hits L2 costs the *MissLatency/penalty above, and an L2
     *  miss costs memoryLatency instead. Off by default. */
    bool enableL2 = false;
    CacheConfig l2{10, 8, 4};     ///< 1 Mi-bit-equivalent unified L2
    unsigned memoryLatency = 48;

    // The BTB and RAS belong to the prediction engine now
    // (EngineConfig::modelTargets + btbSetsLog2/btbWays/rasDepth):
    // they are predictor state - shared or partitioned across
    // contexts, checkpointed, stat-registered - not timing state.
    // The pipeline only charges cycles for the outcomes the engine
    // reports through ProcessResult.
};

/** Timing results. */
struct PipelineStats
{
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t rasHits = 0;
    std::uint64_t rasMisses = 0;
    std::uint64_t mispredictStallCycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(insts) /
                static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The timing model. One instance per simulation run. */
class Pipeline
{
  public:
    /**
     * @param engine Prediction engine (owns the branch stats AND the
     *        target structures - it must be constructed with
     *        EngineConfig::modelTargets armed, or the timing model
     *        would silently charge no target penalties at all).
     * @param config Machine parameters.
     */
    Pipeline(PredictionEngine &engine, PipelineConfig config);

    /**
     * Simulate up to @p max_insts instructions from @p emu. Returns
     * the accumulated stats (also available via stats()).
     */
    const PipelineStats &run(Emulator &emu, std::uint64_t max_insts);

    const PipelineStats &stats() const { return pipeStats; }

  private:
    PredictionEngine &engine;
    PipelineConfig cfg;
    Cache icache;
    Cache dcache;
    Cache l2;
    PipelineStats pipeStats;

    std::uint64_t regReady[numGprs] = {};
    std::uint64_t predReady[numPredRegs] = {};

    std::uint64_t cycle = 0;        ///< current issue cycle
    unsigned slotsUsed = 0;
    std::uint64_t fetchReady = 0;   ///< earliest issue due to front end

    std::uint64_t execLatency(const DynInst &dyn);
    std::uint64_t operandsReady(const DynInst &dyn) const;
    void issueOne(const DynInst &dyn);
};

} // namespace pabp

#endif // PABP_PIPELINE_PIPELINE_HH
