#include "fuzz/fuzz_runner.hh"

#include <ostream>

#include "bpred/factory.hh"
#include "util/rng.hh"

namespace pabp::fuzz {

namespace {

std::uint64_t
mix(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Engine-flag combinations a campaign cycles through: the E6 axis
 *  (base/sfpf/pgu/both), the speculative-squash extension with both
 *  confidence gates, and the two ablations. */
const char *const engineSpecs[] = {
    "base",          "sfpf",         "pgu",
    "sfpf+pgu",      "spec",         "sfpf+pgu+jrs",
    "sfpf+train",    "sfpf+consdef", "sfpf+pgu+spec",
};

} // anonymous namespace

FuzzCase
deriveCase(std::uint64_t seed)
{
    Rng rng(mix(seed, 0xde51));

    FuzzCase c;
    c.name = "campaign-" + std::to_string(seed);
    c.seed = seed;
    // The registry order (bpred/factory.cc) is append-only precisely
    // so this draw keeps mapping old campaign seeds to the same
    // predictor kind.
    const std::vector<std::string> &kinds = allPredictorKinds();
    c.predictor = kinds[rng.below(kinds.size())];
    c.sizeLog2 = 8 + static_cast<unsigned>(rng.below(5));

    Expected<EngineConfig> engine =
        parseEngineSpec(engineSpecs[rng.below(std::size(engineSpecs))]);
    c.engine = engine.value(); // specs above are all well-formed
    c.engine.availDelay =
        rng.chance(0.25) ? static_cast<unsigned>(rng.below(33)) : 8;

    c.maxInsts = 4'000 + rng.below(12'000);
    c.gen.items = 2 + static_cast<unsigned>(rng.below(12));
    c.gen.repeats = 2 + static_cast<std::int64_t>(rng.below(16));
    c.gen.branchDensity = static_cast<unsigned>(rng.below(101));
    c.gen.predNestDepth = static_cast<unsigned>(rng.below(4));
    c.gen.loopDepth = static_cast<unsigned>(rng.below(4));
    c.gen.callDepth =
        rng.chance(0.35) ? 1 + static_cast<unsigned>(rng.below(3)) : 0;
    c.gen.hbPressure = static_cast<unsigned>(rng.below(101));
    c.gen.divEdgePercent =
        rng.chance(0.3) ? 10 + static_cast<unsigned>(rng.below(40)) : 0;
    c.gen.emptyRas = rng.chance(0.1);
    c.gen.dataWindow = std::int64_t(64) << rng.below(6); // 64..2048

    // A quarter of the campaign interleaves the stream across several
    // trace contexts so the multictx oracle sees random schedules,
    // history-sharing modes and tag widths, not just the corpus pins.
    if (rng.chance(0.25)) {
        c.contexts = 2 + static_cast<unsigned>(rng.below(3));
        c.ctxSchedule = rng.chance(0.5) ? ScheduleKind::Bursty
                                        : ScheduleKind::RoundRobin;
        c.ctxQuantum = std::uint64_t(16) << rng.below(6); // 16..512
        c.ctxSeed = 1 + rng.below(1'000);
        c.ctxShared = rng.chance(0.6);
        c.ctxTagBits = static_cast<unsigned>(rng.below(3));
    }
    clampConfig(c.gen);
    return c;
}

Expected<CampaignResult>
runCampaign(const CampaignConfig &cfg, const RunEnv &env,
            std::ostream &log)
{
    CampaignResult result;
    for (unsigned i = 0; i < cfg.runs; ++i) {
        const std::uint64_t seed = cfg.baseSeed + i;
        FuzzCase c = deriveCase(seed);
        Expected<CaseOutcome> outcome = runCase(c, env);
        if (!outcome.ok())
            return outcome.status();
        ++result.casesRun;
        if (outcome.value().passed())
            continue;

        ++result.casesFailed;
        log << "FAIL seed " << seed << " (" << c.predictor << "/"
            << engineSpecString(c.engine) << "):\n";
        for (const FuzzReport &report : outcome.value().failures)
            log << "  [" << oracleName(report.oracle) << "] "
                << report.status.toString() << "\n";

        ShrinkResult shrunk = shrinkCase(c, env, cfg.shrinkBudget);
        shrunk.shrunk.name = "min-" + std::to_string(seed);
        log << "  minimised in " << shrunk.attempts << " attempts ("
            << shrunk.accepted << " reductions):\n"
            << formatCase(shrunk.shrunk);
        result.minimized.push_back(shrunk.shrunk);

        if (!cfg.emitDir.empty()) {
            const std::string path = cfg.emitDir + "/min-" +
                std::to_string(seed) + ".pabp";
            Status written = writeCaseFile(path, shrunk.shrunk);
            if (!written.ok())
                return written;
            result.emitted.push_back(path);
            log << "  wrote " << path << "\n";
        }
    }
    log << "campaign: " << result.casesRun << " case(s), "
        << result.casesFailed << " failure(s), seeds ["
        << cfg.baseSeed << ", " << cfg.baseSeed + cfg.runs << ")\n";
    return result;
}

Expected<CaseOutcome>
replayCaseFile(const std::string &path, const RunEnv &env,
               std::ostream &log, unsigned shrink_budget)
{
    Expected<FuzzCase> loaded = readCaseFile(path);
    if (!loaded.ok())
        return loaded.status();
    const FuzzCase &c = loaded.value();

    Expected<CaseOutcome> outcome = runCase(c, env);
    if (!outcome.ok())
        return outcome.status();

    log << path << ": " << c.name << " (" << c.predictor << "/"
        << engineSpecString(c.engine) << ", oracles "
        << formatOracleMask(c.oracles) << ")\n";
    if (outcome.value().passed()) {
        log << "  PASS\n";
        return outcome;
    }
    for (const FuzzReport &report : outcome.value().failures)
        log << "  FAIL [" << oracleName(report.oracle) << "] "
            << report.status.toString() << "\n";
    ShrinkResult shrunk = shrinkCase(c, env, shrink_budget);
    shrunk.shrunk.name = c.name + "-min";
    log << "  minimised reproducer:\n" << formatCase(shrunk.shrunk);
    return outcome;
}

Status
checkHarness(const RunEnv &env, std::ostream &log)
{
    RunEnv injected = env;
    injected.injectClampBug = true;

    FuzzCase c;
    c.name = "clamp-bug-check";
    c.seed = 7;
    c.predictor = "gshare";
    c.oracles = static_cast<unsigned>(Oracle::Checkpoint);
    c.maxInsts = 20'000;
    clampConfig(c.gen);

    Expected<CaseOutcome> outcome = runCase(c, injected);
    if (!outcome.ok())
        return outcome.status();
    if (outcome.value().passed())
        return statusError(
            StatusCode::Corrupt,
            "harness check: injected cursor-clamp bug was NOT caught "
            "by the checkpoint oracle");
    log << "harness check: injected clamp bug caught:\n";
    for (const FuzzReport &report : outcome.value().failures)
        log << "  [" << oracleName(report.oracle) << "] "
            << report.status.toString() << "\n";

    ShrinkResult shrunk = shrinkCase(c, injected, 200);
    log << "harness check: minimised to max_insts="
        << shrunk.shrunk.maxInsts << " items="
        << shrunk.shrunk.gen.items << " repeats="
        << shrunk.shrunk.gen.repeats << " in " << shrunk.attempts
        << " attempts\n";
    if (shrunk.shrunk.maxInsts > 20)
        return statusError(
            StatusCode::Corrupt,
            "harness check: shrinker left a reproducer of " +
                std::to_string(shrunk.shrunk.maxInsts) +
                " trace instructions (want <= 20)");

    // The minimised case must still reproduce when replayed as
    // written - the corpus contract.
    Expected<CaseOutcome> replay = runCase(shrunk.shrunk, injected);
    if (!replay.ok())
        return replay.status();
    if (replay.value().passed())
        return statusError(StatusCode::Corrupt,
                           "harness check: minimised case does not "
                           "reproduce the injected bug");
    log << "harness check: PASS\n";
    return {};
}

} // namespace pabp::fuzz
