/**
 * @file
 * Delta-debugging shrinker for fuzz cases. Because program generation
 * is deterministic in (seed, knobs), minimisation happens over the
 * KNOBS, not the program text: each accepted step shrinks one knob
 * toward its floor (fewer items, fewer repeats, shorter trace budget,
 * no calls, ...) while the failure predicate keeps reproducing. The
 * fixpoint is a small self-contained `.pabp` reproducer.
 */

#ifndef PABP_FUZZ_SHRINK_HH
#define PABP_FUZZ_SHRINK_HH

#include <functional>

#include "fuzz/fuzz_case.hh"
#include "fuzz/oracles.hh"

namespace pabp::fuzz {

/** Returns true when the candidate still reproduces the failure. */
using FailPredicate = std::function<bool(const FuzzCase &)>;

/** What the shrinker did. */
struct ShrinkResult
{
    FuzzCase shrunk;       ///< smallest still-failing case found
    unsigned accepted = 0; ///< reductions that kept the failure
    unsigned attempts = 0; ///< predicate evaluations spent
};

/**
 * Greedy knob minimisation against an arbitrary predicate (exposed
 * separately so the unit tests can drive it with synthetic
 * predicates). @p start must satisfy @p still_fails; @p budget bounds
 * predicate evaluations.
 */
ShrinkResult shrinkCaseWith(const FuzzCase &start,
                            const FailPredicate &still_fails,
                            unsigned budget = 200);

/**
 * Minimise a case that failed runCase(): re-runs the case to learn
 * which oracles fail, restricts the case to exactly those oracles
 * (faster replay, and the reproducer pins the failing oracle), then
 * shrinks while at least one of them keeps failing. Returns the
 * original case untouched (accepted == 0, attempts == 0) when it does
 * not fail to begin with.
 */
ShrinkResult shrinkCase(const FuzzCase &start, const RunEnv &env,
                        unsigned budget = 200);

} // namespace pabp::fuzz

#endif // PABP_FUZZ_SHRINK_HH
