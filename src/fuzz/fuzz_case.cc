#include "fuzz/fuzz_case.hh"

#include <fstream>
#include <sstream>
#include <vector>

namespace pabp::fuzz {

namespace {

const Oracle oracleList[] = {Oracle::IfConvert, Oracle::Pipeline,
                             Oracle::Replay, Oracle::Checkpoint,
                             Oracle::Trace, Oracle::Sweep,
                             Oracle::Journal, Oracle::MultiCtx};

Expected<std::uint64_t>
parseU64(const std::string &key, const std::string &text)
{
    if (text.empty())
        return statusError(StatusCode::ParseError,
                           "fuzz case: empty value for " + key);
    std::uint64_t out = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return statusError(StatusCode::ParseError,
                               "fuzz case: bad number for " + key +
                                   ": '" + text + "'");
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (out > (~0ull - digit) / 10)
            return statusError(StatusCode::ParseError,
                               "fuzz case: overflow in " + key);
        out = out * 10 + digit;
    }
    return out;
}

Expected<bool>
parseBool(const std::string &key, const std::string &text)
{
    if (text == "0" || text == "false")
        return false;
    if (text == "1" || text == "true")
        return true;
    return statusError(StatusCode::ParseError,
                       "fuzz case: bad bool for " + key + ": '" +
                           text + "'");
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, sep))
        out.push_back(item);
    return out;
}

} // anonymous namespace

const char *
oracleName(Oracle oracle)
{
    switch (oracle) {
      case Oracle::IfConvert: return "ifconvert";
      case Oracle::Pipeline: return "pipeline";
      case Oracle::Replay: return "replay";
      case Oracle::Checkpoint: return "checkpoint";
      case Oracle::Trace: return "trace";
      case Oracle::Sweep: return "sweep";
      case Oracle::Journal: return "journal";
      case Oracle::MultiCtx: return "multictx";
    }
    return "unknown";
}

Expected<unsigned>
parseOracleMask(const std::string &text)
{
    if (text == "all")
        return allOracles;
    unsigned mask = 0;
    for (const std::string &token : splitList(text, ',')) {
        bool found = false;
        for (Oracle o : oracleList) {
            if (token == oracleName(o)) {
                mask |= static_cast<unsigned>(o);
                found = true;
                break;
            }
        }
        if (!found)
            return statusError(StatusCode::ParseError,
                               "fuzz case: unknown oracle '" + token +
                                   "'");
    }
    if (mask == 0)
        return statusError(StatusCode::ParseError,
                           "fuzz case: empty oracle list");
    return mask;
}

std::string
formatOracleMask(unsigned mask)
{
    if ((mask & allOracles) == allOracles)
        return "all";
    std::string out;
    for (Oracle o : oracleList) {
        if (!(mask & static_cast<unsigned>(o)))
            continue;
        if (!out.empty())
            out += ',';
        out += oracleName(o);
    }
    return out;
}

std::string
engineSpecString(const EngineConfig &cfg)
{
    std::string out;
    auto add = [&out](const char *token) {
        if (!out.empty())
            out += '+';
        out += token;
    };
    if (cfg.useSfpf)
        add("sfpf");
    if (cfg.usePgu)
        add("pgu");
    if (cfg.useSpeculativeSquash)
        add(cfg.specGate == EngineConfig::SpecGate::Jrs ? "jrs"
                                                        : "spec");
    if (cfg.trainOnSquashed)
        add("train");
    if (cfg.conservativeDefTracking)
        add("consdef");
    return out.empty() ? "base" : out;
}

Expected<EngineConfig>
parseEngineSpec(const std::string &spec)
{
    EngineConfig cfg;
    if (spec == "base")
        return cfg;
    for (const std::string &token : splitList(spec, '+')) {
        if (token == "sfpf") {
            cfg.useSfpf = true;
        } else if (token == "pgu") {
            cfg.usePgu = true;
        } else if (token == "spec") {
            cfg.useSpeculativeSquash = true;
        } else if (token == "jrs") {
            cfg.useSpeculativeSquash = true;
            cfg.specGate = EngineConfig::SpecGate::Jrs;
        } else if (token == "train") {
            cfg.trainOnSquashed = true;
        } else if (token == "consdef") {
            cfg.conservativeDefTracking = true;
        } else {
            return statusError(StatusCode::ParseError,
                               "fuzz case: unknown engine token '" +
                                   token + "'");
        }
    }
    return cfg;
}

Expected<FuzzCase>
parseCase(const std::string &text)
{
    FuzzCase out;
    bool sawFormat = false;
    std::istringstream in(text);
    std::string line;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::size_t eq = line.find('=', start);
        if (eq == std::string::npos)
            return statusError(StatusCode::ParseError,
                               "fuzz case line " +
                                   std::to_string(lineNo) +
                                   ": expected key=value");
        std::string key = line.substr(start, eq - start);
        std::string value = line.substr(eq + 1);

        auto num = [&](auto apply) -> Status {
            Expected<std::uint64_t> v = parseU64(key, value);
            if (!v.ok())
                return v.status();
            apply(v.value());
            return {};
        };
        auto flag = [&](auto apply) -> Status {
            Expected<bool> v = parseBool(key, value);
            if (!v.ok())
                return v.status();
            apply(v.value());
            return {};
        };

        if (key == "format") {
            if (value != "pabp-fuzz-case-v1")
                return statusError(StatusCode::VersionMismatch,
                                   "fuzz case: unsupported format '" +
                                       value + "'");
            sawFormat = true;
        } else if (key == "name") {
            out.name = value;
        } else if (key == "seed") {
            PABP_TRY(num([&](std::uint64_t v) { out.seed = v; }));
        } else if (key == "predictor") {
            out.predictor = value;
        } else if (key == "size_log2") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.sizeLog2 = static_cast<unsigned>(v);
            }));
        } else if (key == "engine") {
            Expected<EngineConfig> cfg = parseEngineSpec(value);
            if (!cfg.ok())
                return cfg.status();
            unsigned delay = out.engine.availDelay;
            out.engine = cfg.value();
            out.engine.availDelay = delay;
        } else if (key == "avail_delay") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.engine.availDelay = static_cast<unsigned>(v);
            }));
        } else if (key == "oracles") {
            Expected<unsigned> mask = parseOracleMask(value);
            if (!mask.ok())
                return mask.status();
            out.oracles = mask.value();
        } else if (key == "max_insts") {
            PABP_TRY(num([&](std::uint64_t v) { out.maxInsts = v; }));
        } else if (key == "items") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.items = static_cast<unsigned>(v);
            }));
        } else if (key == "repeats") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.repeats = static_cast<std::int64_t>(v);
            }));
        } else if (key == "branch_density") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.branchDensity = static_cast<unsigned>(v);
            }));
        } else if (key == "pred_nest") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.predNestDepth = static_cast<unsigned>(v);
            }));
        } else if (key == "loop_depth") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.loopDepth = static_cast<unsigned>(v);
            }));
        } else if (key == "call_depth") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.callDepth = static_cast<unsigned>(v);
            }));
        } else if (key == "hb_pressure") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.hbPressure = static_cast<unsigned>(v);
            }));
        } else if (key == "div_edges") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.divEdgePercent = static_cast<unsigned>(v);
            }));
        } else if (key == "data_branches") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.dataBranchPercent = static_cast<unsigned>(v);
            }));
        } else if (key == "empty_ras") {
            PABP_TRY(flag([&](bool v) { out.gen.emptyRas = v; }));
        } else if (key == "data_window") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.gen.dataWindow = static_cast<std::int64_t>(v);
            }));
        } else if (key == "corrupt_flips") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.corruptFlips = static_cast<unsigned>(v);
            }));
        } else if (key == "corrupt_seed") {
            PABP_TRY(num([&](std::uint64_t v) { out.corruptSeed = v; }));
        } else if (key == "corrupt_truncate") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.corruptTruncate = static_cast<unsigned>(v);
            }));
        } else if (key == "contexts") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.contexts =
                    static_cast<unsigned>(v ? v : 1);
            }));
        } else if (key == "ctx_schedule") {
            Expected<ScheduleKind> kind = parseScheduleKind(value);
            if (!kind.ok())
                return kind.status();
            out.ctxSchedule = kind.value();
        } else if (key == "ctx_quantum") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.ctxQuantum = v ? v : 1;
            }));
        } else if (key == "ctx_seed") {
            PABP_TRY(num([&](std::uint64_t v) { out.ctxSeed = v; }));
        } else if (key == "ctx_shared") {
            PABP_TRY(flag([&](bool v) { out.ctxShared = v; }));
        } else if (key == "ctx_tag_bits") {
            PABP_TRY(num([&](std::uint64_t v) {
                out.ctxTagBits = static_cast<unsigned>(v);
            }));
        } else {
            return statusError(StatusCode::ParseError,
                               "fuzz case line " +
                                   std::to_string(lineNo) +
                                   ": unknown key '" + key + "'");
        }
    }
    if (!sawFormat)
        return statusError(StatusCode::BadMagic,
                           "fuzz case: missing format= line");
    clampConfig(out.gen);
    return out;
}

std::string
formatCase(const FuzzCase &fuzz_case)
{
    const FuzzCase &c = fuzz_case;
    std::ostringstream out;
    out << "# pabp fuzz case (docs/FUZZING.md)\n";
    out << "format=pabp-fuzz-case-v1\n";
    out << "name=" << c.name << "\n";
    out << "seed=" << c.seed << "\n";
    out << "predictor=" << c.predictor << "\n";
    out << "size_log2=" << c.sizeLog2 << "\n";
    out << "engine=" << engineSpecString(c.engine) << "\n";
    out << "avail_delay=" << c.engine.availDelay << "\n";
    out << "oracles=" << formatOracleMask(c.oracles) << "\n";
    out << "max_insts=" << c.maxInsts << "\n";
    out << "items=" << c.gen.items << "\n";
    out << "repeats=" << c.gen.repeats << "\n";
    out << "branch_density=" << c.gen.branchDensity << "\n";
    out << "pred_nest=" << c.gen.predNestDepth << "\n";
    out << "loop_depth=" << c.gen.loopDepth << "\n";
    out << "call_depth=" << c.gen.callDepth << "\n";
    out << "hb_pressure=" << c.gen.hbPressure << "\n";
    out << "div_edges=" << c.gen.divEdgePercent << "\n";
    out << "data_branches=" << c.gen.dataBranchPercent << "\n";
    out << "empty_ras=" << (c.gen.emptyRas ? 1 : 0) << "\n";
    out << "data_window=" << c.gen.dataWindow << "\n";
    out << "corrupt_flips=" << c.corruptFlips << "\n";
    out << "corrupt_seed=" << c.corruptSeed << "\n";
    out << "corrupt_truncate=" << c.corruptTruncate << "\n";
    out << "contexts=" << c.contexts << "\n";
    out << "ctx_schedule=" << scheduleKindName(c.ctxSchedule) << "\n";
    out << "ctx_quantum=" << c.ctxQuantum << "\n";
    out << "ctx_seed=" << c.ctxSeed << "\n";
    out << "ctx_shared=" << (c.ctxShared ? 1 : 0) << "\n";
    out << "ctx_tag_bits=" << c.ctxTagBits << "\n";
    return out.str();
}

Expected<FuzzCase>
readCaseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return statusError(StatusCode::IoError,
                           "fuzz case: cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        return statusError(StatusCode::IoError,
                           "fuzz case: read failed for " + path);
    Expected<FuzzCase> parsed = parseCase(text.str());
    if (!parsed.ok())
        return statusError(parsed.status().code(),
                           path + ": " + parsed.status().message());
    return parsed;
}

Status
writeCaseFile(const std::string &path, const FuzzCase &fuzz_case)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return statusError(StatusCode::IoError,
                           "fuzz case: cannot create " + path);
    out << formatCase(fuzz_case);
    out.flush();
    if (!out)
        return statusError(StatusCode::IoError,
                           "fuzz case: write failed for " + path);
    return {};
}

} // namespace pabp::fuzz
