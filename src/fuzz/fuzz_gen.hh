/**
 * @file
 * Seeded random-program generator for the differential-testing
 * subsystem (docs/FUZZING.md). Extends the structured generator idea
 * of workloads/random_gen.hh with the knobs the fuzz campaign sweeps:
 *
 *  - branchDensity: fraction of top-level structural items that are
 *    branchy (diamond / triangle / loop) rather than straight-line.
 *    Each top-level item draws from its OWN rng stream seeded by
 *    (seed, item index), and the branchy/straight decision comes from
 *    a separate up-front roll per item, so raising the density with a
 *    fixed seed strictly adds branches without perturbing the other
 *    items - the monotonicity property tests/test_fuzz_gen.cc pins.
 *  - predNestDepth: diamonds nest inside diamond arms up to this
 *    depth, which after if-conversion yields chains of guarded
 *    (parallel) compares - including compares whose guard is false at
 *    execute, one of the emulator edge cases the corpus covers.
 *  - hyperblock-formation pressure: mapped onto the region heuristics
 *    by fuzzCompileOptions() (0 = conservative defaults, 100 = huge
 *    permissive regions that maximise region-based branches).
 *  - loop shapes: counted loops with optional data-dependent break
 *    edges, nested up to loopDepth.
 *  - call/return depth: buildFuzzPrograms() wraps the compiled body
 *    in a driver + a chain of callDepth nested procedures (Program
 *    level - the CFG IR has no call support), exercising Call/Ret and
 *    the pipeline RAS; emptyRas additionally ends the driver with a
 *    Ret on an empty call stack (architecturally a halt).
 *  - division/overflow edge cases: INT64_MIN / -1, division by zero,
 *    and wrapping multiply/add patterns, at a configurable rate.
 *
 * Everything is deterministic in (seed, config): equal inputs give
 * byte-identical programs, which is what makes a corpus case a
 * self-contained reproducer.
 */

#ifndef PABP_FUZZ_FUZZ_GEN_HH
#define PABP_FUZZ_FUZZ_GEN_HH

#include <cstdint>

#include "compiler/compile.hh"
#include "workloads/workload.hh"

namespace pabp::fuzz {

/** Generator knobs. All fields are clamped by clampConfig(). */
struct FuzzProgramConfig
{
    unsigned items = 8;          ///< top-level structural items
    unsigned branchDensity = 60; ///< percent of items that branch
    unsigned predNestDepth = 2;  ///< max nested diamond depth
    unsigned loopDepth = 2;      ///< max loop nesting
    unsigned callDepth = 0;      ///< call-chain procedures (0 = none)
    unsigned hbPressure = 50;    ///< 0..100 region-formation pressure
    unsigned divEdgePercent = 0; ///< percent chance of div/overflow
                                 ///< edge-case blocks per item
    unsigned dataBranchPercent = 0; ///< percent of items that branch
                                    ///< on a strided window load (a
                                    ///< full-window-period outcome
                                    ///< stream; 0 = legacy draws)
    bool emptyRas = false;       ///< trailing ret on an empty stack
    std::int64_t dataWindow = 1024; ///< memory words touched (pow2)
    std::int64_t repeats = 12;   ///< body outer-loop trip count

    bool operator==(const FuzzProgramConfig &) const = default;
};

/** Clamp every knob into its supported range (in place). */
void clampConfig(FuzzProgramConfig &cfg);

/**
 * Build the CFG-body workload for (seed, cfg). This is the
 * sweep-compatible form: the call/return wrapper is NOT applied
 * (RunSpec factories compile the workload themselves). Deterministic.
 */
Workload makeFuzzWorkload(std::uint64_t seed,
                          const FuzzProgramConfig &cfg);

/**
 * Compile options for a fuzz case: hbPressure mapped onto the region
 * heuristics, and a reduced profiling budget so corpus replay stays
 * cheap enough for tier-1 CI.
 */
CompileOptions fuzzCompileOptions(const FuzzProgramConfig &cfg,
                                  bool if_convert);

/** Both lowerings of one generated program, call-wrapped when the
 *  config asks for it, plus what the oracles need to run them. */
struct FuzzPrograms
{
    Workload body;           ///< the CFG workload (init closure!)
    CompiledProgram branchy; ///< normal lowering, wrapped
    CompiledProgram converted; ///< if-converted lowering, wrapped
};

/**
 * Generate + compile both lowerings and apply the call/return
 * wrapper (when callDepth > 0 or emptyRas). Both programs pass
 * validateProgram(); the converted one passes
 * verifyPredicatedProgram() before wrapping (the wrapper's driver
 * and procedures live outside every region).
 */
FuzzPrograms buildFuzzPrograms(std::uint64_t seed,
                               const FuzzProgramConfig &cfg);

/** Number of CondBranch terminators in a CFG (the static branch
 *  count the density-monotonicity property is stated over). */
unsigned staticCondBranches(const IrFunction &fn);

/** Stable 64-bit fingerprint of a config (workload cache ids). */
std::uint64_t configFingerprint(const FuzzProgramConfig &cfg);

} // namespace pabp::fuzz

#endif // PABP_FUZZ_FUZZ_GEN_HH
