/**
 * @file
 * The differential oracles the fuzz campaign runs on each case. The
 * repo has four independent execution paths - emulator, pipeline,
 * reference replay, fast batch replay - plus the compile-time
 * if-conversion transform and the two persistence formats (trace,
 * checkpoint); each oracle pins one cross-path agreement:
 *
 *  ifconvert:  branchy vs if-converted lowering halt with identical
 *              GPRs + memory; both pass static validation and the
 *              converted one passes pred_verify.
 *  pipeline:   the prediction engine sees the same stream (same
 *              EngineStats, bit for bit) whether driven by the bare
 *              emulator (runTrace) or by the cycle-level pipeline.
 *  replay:     reference replayTrace vs PredictionEngine::processBatch:
 *              stats, per-branch profile, PGU bit count, processed
 *              count AND exported metrics bytes identical.
 *  checkpoint: save mid-replay, restore into fresh objects, finish -
 *              identical stats to a straight-through run; plus the
 *              past-the-end cursor contract of replayTraceFrom.
 *  trace:      bit-flipped / truncated PABPTRC2 bytes produce a typed
 *              Status or a valid salvage prefix - never a crash, never
 *              silently different events.
 *  sweep:      SweepRunner::runOne on the generated workload agrees
 *              between --fast-replay and the reference cell loop.
 *  journal:    bit-flipped / truncated PABPJRN1 results-journal bytes
 *              produce a typed Status or a valid salvage prefix, and
 *              JournalWriter::open truncates the damage idempotently -
 *              never a crash, never silently different records.
 *  multictx:   interleaved multi-context replay (core/multictx.hh):
 *              a 1-context replay is byte-identical to the ordinary
 *              single-stream loop, and with contexts > 1 the fast and
 *              reference interleaved replays agree per context and
 *              reproduce themselves deterministically.
 *
 * A divergence is reported as a FuzzReport with a descriptive Status;
 * setup problems (unknown predictor kind, unwritable scratch dir) are
 * the Expected<> error path of runCase() instead, so the CLI can map
 * them to exit code 2 rather than "bug found".
 */

#ifndef PABP_FUZZ_ORACLES_HH
#define PABP_FUZZ_ORACLES_HH

#include <string>
#include <vector>

#include "fuzz/fuzz_case.hh"

namespace pabp::fuzz {

/** One oracle's verdict on one case. */
struct FuzzReport
{
    Oracle oracle = Oracle::IfConvert;
    Status status; ///< non-Ok: the divergence, in words
};

/** Everything runCase() learned. */
struct CaseOutcome
{
    std::vector<FuzzReport> failures;
    unsigned oraclesRun = 0; ///< mask of oracles that executed

    bool passed() const { return failures.empty(); }
};

/** Environment knobs for a run. */
struct RunEnv
{
    /** Directory for checkpoint scratch files; "." by default. */
    std::string scratchDir = ".";
    /**
     * Regression self-check: re-introduce the PR-4 replayTraceFrom
     * cursor-clamp bug (a past-the-end resume cursor yanked back to
     * trace.size(), silently re-running events) in the checkpoint
     * oracle's replay wrapper. The harness must catch and minimise
     * it - the acceptance check behind `pabp-fuzz --check-harness`.
     */
    bool injectClampBug = false;
    /**
     * Exit-code self-check for the mining mode: make the
     * predictability scorer (fuzz/mining.hh) report a typed failure
     * on every case. The CLI must surface that as exit 3 - a scoring
     * infrastructure problem, NOT a correctness bug - and must never
     * quarantine or emit the affected seed as a reproducer.
     */
    bool injectScorerFailure = false;
};

/** Run one oracle. Ok = agreement; non-Ok = divergence report. */
Status runOracle(Oracle oracle, const FuzzCase &fuzz_case,
                 const RunEnv &env);

/** Run every oracle selected by the case's mask. Error path = setup
 *  problems only (bad predictor kind, unwritable scratch). */
Expected<CaseOutcome> runCase(const FuzzCase &fuzz_case,
                              const RunEnv &env);

} // namespace pabp::fuzz

#endif // PABP_FUZZ_ORACLES_HH
