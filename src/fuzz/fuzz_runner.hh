/**
 * @file
 * Campaign driver shared by tools/pabp-fuzz and the tests: derive a
 * randomised case per seed, run every oracle, shrink failures to
 * minimal reproducers, and (optionally) emit them as `.pabp` files
 * for tests/corpus/. Also hosts the harness self-check that
 * re-introduces the PR-4 replayTraceFrom cursor-clamp bug and proves
 * the oracles catch it and the shrinker minimises it.
 */

#ifndef PABP_FUZZ_FUZZ_RUNNER_HH
#define PABP_FUZZ_FUZZ_RUNNER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracles.hh"
#include "fuzz/shrink.hh"

namespace pabp::fuzz {

/**
 * Deterministically derive a randomised fuzz case from a seed:
 * predictor kind, table size, engine-flag combination and every
 * generator knob are drawn from an rng stream over the seed, so a
 * campaign over seeds [S, S+N) explores the configuration space while
 * staying exactly reproducible.
 */
FuzzCase deriveCase(std::uint64_t seed);

/** Campaign parameters. */
struct CampaignConfig
{
    std::uint64_t baseSeed = 1;
    unsigned runs = 20;
    /** Directory minimised failures are written into ("" = none). */
    std::string emitDir;
    unsigned shrinkBudget = 200;
};

/** What a campaign produced. */
struct CampaignResult
{
    unsigned casesRun = 0;
    unsigned casesFailed = 0;
    /** One minimised reproducer per failing case. */
    std::vector<FuzzCase> minimized;
    /** Paths written under CampaignConfig::emitDir (when set). */
    std::vector<std::string> emitted;

    bool clean() const { return casesFailed == 0; }
};

/**
 * Run seeds [baseSeed, baseSeed + runs). Progress and failure
 * descriptions go to @p log. The error path is setup-only (an
 * unwritable emit directory); divergences are reported in the result.
 */
Expected<CampaignResult> runCampaign(const CampaignConfig &cfg,
                                     const RunEnv &env,
                                     std::ostream &log);

/**
 * Replay one case file through every oracle it selects. Prints a
 * per-oracle verdict to @p log; on divergence also shrinks (within
 * @p shrink_budget) and prints the minimised case text.
 */
Expected<CaseOutcome> replayCaseFile(const std::string &path,
                                     const RunEnv &env,
                                     std::ostream &log,
                                     unsigned shrink_budget = 200);

/**
 * Harness self-check (the PR-5 acceptance criterion): run a
 * checkpoint-oracle case with the PR-4 cursor-clamp bug injected
 * (RunEnv::injectClampBug). Ok iff the oracle catches the bug AND the
 * shrinker minimises it to a reproducer of at most 20 trace
 * instructions; any other outcome is an error describing what the
 * harness missed.
 */
Status checkHarness(const RunEnv &env, std::ostream &log);

} // namespace pabp::fuzz

#endif // PABP_FUZZ_FUZZ_RUNNER_HH
