#include "fuzz/shrink.hh"

namespace pabp::fuzz {

namespace {

/** Shrink driver state: the current smallest failing case plus the
 *  evaluation budget shared by every field. */
struct Shrinker
{
    FuzzCase best;
    const FailPredicate &stillFails;
    unsigned budget;
    unsigned accepted = 0;
    unsigned attempts = 0;

    Shrinker(FuzzCase start, const FailPredicate &pred, unsigned b)
        : best(std::move(start)), stillFails(pred), budget(b)
    {}

    bool
    tryCandidate(const FuzzCase &candidate)
    {
        if (attempts >= budget)
            return false;
        ++attempts;
        if (!stillFails(candidate))
            return false;
        best = candidate;
        ++accepted;
        return true;
    }

    /**
     * Minimise one numeric knob: jump straight to the floor first
     * (one evaluation wins everything when the knob is irrelevant to
     * the failure), then binary-descend toward it.
     */
    template <typename Get, typename Set>
    void
    shrinkNumeric(std::uint64_t floor, Get get, Set set)
    {
        while (attempts < budget && get(best) > floor) {
            FuzzCase candidate = best;
            set(candidate, floor);
            if (tryCandidate(candidate))
                return;
            std::uint64_t cur = get(best);
            std::uint64_t mid = floor + (cur - floor) / 2;
            if (mid == cur)
                return;
            candidate = best;
            set(candidate, mid);
            if (!tryCandidate(candidate))
                return; // neither floor nor midpoint reproduces
        }
    }

};

} // anonymous namespace

ShrinkResult
shrinkCaseWith(const FuzzCase &start, const FailPredicate &still_fails,
               unsigned budget)
{
    Shrinker sh(start, still_fails, budget);

    // Iterate to a fixpoint: shrinking one knob (say items) often
    // unlocks another (say maxInsts), so one pass is not enough.
    unsigned lastAccepted;
    do {
        lastAccepted = sh.accepted;

        sh.shrinkNumeric(
            1, [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.repeats);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.repeats = static_cast<std::int64_t>(v);
            });
        sh.shrinkNumeric(
            1,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.items);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.items = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            12, [](const FuzzCase &c) { return c.maxInsts; },
            [](FuzzCase &c, std::uint64_t v) { c.maxInsts = v; });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.callDepth);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.callDepth = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.loopDepth);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.loopDepth = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.predNestDepth);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.predNestDepth = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.branchDensity);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.branchDensity = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.divEdgePercent);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.divEdgePercent = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(
                    c.gen.dataBranchPercent);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.dataBranchPercent = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.hbPressure);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.hbPressure = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            16,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.gen.dataWindow);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.gen.dataWindow = static_cast<std::int64_t>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.corruptTruncate);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.corruptTruncate = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.corruptFlips);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.corruptFlips = static_cast<unsigned>(v);
            });

        sh.shrinkNumeric(
            1,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.contexts);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.contexts = static_cast<unsigned>(v);
            });
        sh.shrinkNumeric(
            0,
            [](const FuzzCase &c) {
                return static_cast<std::uint64_t>(c.ctxTagBits);
            },
            [](FuzzCase &c, std::uint64_t v) {
                c.ctxTagBits = static_cast<unsigned>(v);
            });

        if (!sh.best.ctxShared && sh.best.contexts > 1) {
            // Shared history is the simpler configuration: no
            // export/import swap at slice boundaries.
            FuzzCase candidate = sh.best;
            candidate.ctxShared = true;
            sh.tryCandidate(candidate);
        }

        if (sh.best.gen.emptyRas) {
            FuzzCase candidate = sh.best;
            candidate.gen.emptyRas = false;
            sh.tryCandidate(candidate);
        }
    } while (sh.accepted != lastAccepted && sh.attempts < sh.budget);

    // The clamp keeps the reproducer replayable exactly as written.
    clampConfig(sh.best.gen);
    return ShrinkResult{sh.best, sh.accepted, sh.attempts};
}

ShrinkResult
shrinkCase(const FuzzCase &start, const RunEnv &env, unsigned budget)
{
    Expected<CaseOutcome> base = runCase(start, env);
    if (!base.ok() || base.value().passed())
        return ShrinkResult{start, 0, 0};

    unsigned failMask = 0;
    for (const FuzzReport &report : base.value().failures)
        failMask |= static_cast<unsigned>(report.oracle);

    FuzzCase seed = start;
    seed.oracles = failMask;

    FailPredicate pred = [&env](const FuzzCase &candidate) {
        Expected<CaseOutcome> result = runCase(candidate, env);
        return result.ok() && !result.value().passed();
    };
    return shrinkCaseWith(seed, pred, budget);
}

} // namespace pabp::fuzz
