#include "fuzz/mining.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "bpred/factory.hh"
#include "core/predictability.hh"
#include "sim/emulator.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace pabp::fuzz {

namespace {

constexpr std::size_t miningMemWords = 1u << 16;

/** Too few dynamic conditional branches to characterize: the entropy
 *  estimate would be all warm-up noise. */
constexpr std::uint64_t minScoredBranches = 256;

std::uint64_t
mixMine(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Expected<std::uint64_t>
replayMispredicts(const RecordedTrace &trace, const FuzzCase &c,
                  const EngineConfig &ecfg)
{
    Expected<PredictorPtr> pred =
        tryMakePredictor(c.predictor, c.sizeLog2);
    if (!pred.ok())
        return pred.status();
    PredictionEngine engine(*pred.value(), ecfg);
    replayTrace(trace, engine, trace.size());
    return engine.stats().all.mispredicts;
}

} // anonymous namespace

Status
validateMiningStrategy(const std::string &strategy)
{
    if (strategy == "low-entropy-gap")
        return Status();
    return Status(StatusCode::NotFound,
                  "unknown mining strategy '" + strategy +
                      "' (supported: low-entropy-gap)");
}

Expected<MiningScore>
scoreCase(const FuzzCase &fuzz_case, const RunEnv &env,
          const std::string &strategy)
{
    Status valid = validateMiningStrategy(strategy);
    if (!valid.ok())
        return valid;
    if (env.injectScorerFailure)
        return Status(StatusCode::Unsupported,
                      "injected scorer failure (self-check)");

    // Score the exact artifact a sweep cell runs: the UNWRAPPED
    // predicated lowering (RunSpec factories compile the body
    // workload themselves and never apply the call/return wrapper).
    // Scoring buildFuzzPrograms' wrapped program instead would let
    // the climb optimise a different program than the one bench_e22
    // measures whenever callDepth > 0.
    Workload body = makeFuzzWorkload(fuzz_case.seed, fuzz_case.gen);
    Workload compile_copy = body;
    CompiledProgram conv = compileWorkload(
        compile_copy, fuzzCompileOptions(fuzz_case.gen, true));
    Emulator emu(conv.prog, EmuConfig{miningMemWords, 0});
    if (body.init)
        body.init(emu.state());
    RecordedTrace trace = recordTrace(emu, fuzz_case.maxInsts);

    PredictabilityReport rep = characterizeTrace(trace);
    if (rep.occurrences < minScoredBranches)
        return Status(StatusCode::InvalidArgument,
                      "candidate has only " +
                          std::to_string(rep.occurrences) +
                          " dynamic conditional branches (want >= " +
                          std::to_string(minScoredBranches) +
                          "); not scorable");

    // Baseline engine: techniques off, targets modelled, otherwise
    // the default EngineConfig - the same cell configuration the
    // measurement benches run - with the profile kept for the H2P
    // classification.
    Expected<PredictorPtr> basePred =
        tryMakePredictor(fuzz_case.predictor, fuzz_case.sizeLog2);
    if (!basePred.ok())
        return basePred.status();
    EngineConfig baseCfg;
    baseCfg.modelTargets = true;
    PredictionEngine base(*basePred.value(), baseCfg);
    replayTrace(trace, base, trace.size());

    EngineConfig bothCfg = baseCfg;
    bothCfg.useSfpf = true;
    bothCfg.usePgu = true;
    Expected<std::uint64_t> bothMisp =
        replayMispredicts(trace, fuzz_case, bothCfg);
    if (!bothMisp.ok())
        return bothMisp.status();

    Expected<H2pClassification> cls =
        classifyH2p(base.branchProfile());
    if (!cls.ok())
        return cls.status();

    const EngineStats &stats = base.stats();
    MiningScore s;
    s.branches = rep.occurrences;
    s.entropyK0 = rep.entropy.front();
    s.entropyKmax = rep.entropy.back();
    s.takenRate = rep.takenRate();
    s.transitionRate = rep.transitionRate();
    s.h2pShare = stats.all.branches
        ? static_cast<double>(cls.value().tierMispredicts.front()) /
            static_cast<double>(stats.all.branches)
        : 0.0;
    const double delta = std::abs(
        static_cast<double>(stats.all.mispredicts) -
        static_cast<double>(bothMisp.value()));
    s.techDeltaPerKilo = stats.all.branches
        ? 1000.0 * delta / static_cast<double>(stats.all.branches)
        : 0.0;

    // "low-entropy-gap": branches that stay high-entropy under the
    // deepest history conditioning (the k0 -> kmax entropy gap is
    // low), concentrated residual mispredicts, and a visible
    // technique delta. Each term is in [0, 1]-ish; the H2P share
    // carries the largest weight because it is the quantity
    // bench_e22 compares across workloads.
    const double gap =
        std::max(0.0, s.entropyK0 - s.entropyKmax);
    s.score = 1.0 * s.entropyKmax + 0.5 * (1.0 - gap) +
        2.0 * s.h2pShare +
        0.5 * std::min(1.0, s.techDeltaPerKilo / 50.0);
    return s;
}

namespace {

/** Mutate one generator knob (in place), chosen by @p rng. Local
 *  moves only: the seed stays fixed within a climb so the search is
 *  a walk over knob space, not a restart. */
void
mutateKnobs(FuzzProgramConfig &gen, Rng &rng)
{
    auto bump = [&rng](unsigned v, unsigned step,
                       unsigned lo, unsigned hi) -> unsigned {
        const unsigned d =
            1 + static_cast<unsigned>(rng.below(step));
        long next = static_cast<long>(v) +
            (rng.chance(0.5) ? static_cast<long>(d)
                             : -static_cast<long>(d));
        next = std::clamp<long>(next, lo, hi);
        return static_cast<unsigned>(next);
    };

    switch (rng.below(10)) {
    case 0:
        gen.branchDensity = bump(gen.branchDensity, 25, 10, 100);
        break;
    case 1:
        gen.predNestDepth = bump(gen.predNestDepth, 1, 0, 3);
        break;
    case 2:
        gen.loopDepth = bump(gen.loopDepth, 1, 0, 3);
        break;
    case 3:
        gen.hbPressure = bump(gen.hbPressure, 25, 0, 100);
        break;
    case 4:
        gen.divEdgePercent = bump(gen.divEdgePercent, 10, 0, 50);
        break;
    case 5:
        // Down to a single item: tier-0 is a cumulative-share set,
        // so concentrating the whole mispredict mass in one or two
        // static PCs is exactly what a high H2P share looks like.
        gen.items = bump(gen.items, 3, 1, 32);
        break;
    case 6:
        // Multiplicative like dataWindow: the useful range spans two
        // orders of magnitude (a short program needs thousands of
        // outer trips to warm the measured predictor past cold-start
        // noise), so +-8 steps would never traverse it.
        gen.repeats = rng.chance(0.5)
            ? std::min<std::int64_t>(4096, gen.repeats * 2)
            : std::max<std::int64_t>(32, gen.repeats / 2);
        break;
    case 7:
        gen.dataWindow = rng.chance(0.5)
            ? std::min<std::int64_t>(4096, gen.dataWindow * 2)
            : std::max<std::int64_t>(64, gen.dataWindow / 2);
        break;
    case 8:
        gen.dataBranchPercent =
            bump(gen.dataBranchPercent, 25, 0, 100);
        break;
    default:
        gen.callDepth = bump(gen.callDepth, 1, 0, 3);
        break;
    }
    clampConfig(gen);
}

} // anonymous namespace

Expected<MiningResult>
runMiningCampaign(const MiningConfig &cfg, const RunEnv &env,
                  std::ostream &log)
{
    Status valid = validateMiningStrategy(cfg.strategy);
    if (!valid.ok())
        return valid;

    MiningResult result;
    std::vector<MinedCase> winners;

    for (unsigned r = 0; r < cfg.restarts; ++r) {
        const std::uint64_t seed = cfg.baseSeed + r;
        FuzzCase c = deriveCase(seed);
        c.name = "mined-" + std::to_string(seed);
        c.maxInsts = cfg.maxInsts;
        // Score against the measurement cell, not the campaign
        // draw's random predictor: dominance is judged per predictor,
        // and a case hard for a 2^8 perceptron may be trivial for the
        // gshare cell bench_e22 actually runs.
        c.predictor = cfg.predictor;
        c.sizeLog2 = cfg.sizeLog2;
        // The campaign draw optimises for cheap correctness cases;
        // mining wants hard ones, so steer every restart into the
        // region where hard programs live before the climb starts
        // (the climb can still move every knob): enough outer trips
        // to get past the scorer's minimum-branch bar and cold-start
        // noise, branch-dense bodies, and LOW hyperblock pressure -
        // high pressure if-converts precisely the data-dependent
        // diamonds that carry the mispredict mass, leaving only
        // well-behaved loop branches behind.
        // Few items + mostly data branches concentrates the
        // mispredict mass in a handful of static PCs - the tier-0
        // cutoff is cumulative, so ten equally-hard branches halve
        // the measured share a single dominant branch would get.
        c.gen.items = std::clamp(c.gen.items, 2u, 6u);
        c.gen.repeats = std::max<std::int64_t>(c.gen.repeats, 256);
        c.gen.branchDensity = std::max(c.gen.branchDensity, 90u);
        c.gen.hbPressure = std::min(c.gen.hbPressure, 25u);
        c.gen.dataBranchPercent =
            std::max(c.gen.dataBranchPercent, 70u);
        clampConfig(c.gen);
        // Mining scores the single-stream replay; multi-context
        // interleaving and corruption schedules are campaign-only
        // concerns.
        c.contexts = 1;
        c.corruptFlips = 0;
        c.corruptTruncate = 0;

        Expected<MiningScore> cur = scoreCase(c, env, cfg.strategy);
        ++result.casesScored;
        if (!cur.ok()) {
            ++result.scorerFailures;
            log << "MINE seed " << seed << ": scorer failed: "
                << cur.status().toString() << "\n";
            continue;
        }

        FuzzCase best = c;
        MiningScore bestScore = cur.value();
        Rng rng(mixMine(seed, 0x1a5e));
        for (unsigned step = 0; step < cfg.steps; ++step) {
            FuzzCase cand = best;
            mutateKnobs(cand.gen, rng);
            Expected<MiningScore> s =
                scoreCase(cand, env, cfg.strategy);
            ++result.casesScored;
            if (!s.ok()) {
                ++result.scorerFailures;
                log << "MINE seed " << seed << " step " << step
                    << ": scorer failed: " << s.status().toString()
                    << "\n";
                continue;
            }
            if (s.value().score > bestScore.score) {
                best = cand;
                bestScore = s.value();
            }
        }
        log << "MINE seed " << seed << ": score " << bestScore.score
            << " (H(k_max)=" << bestScore.entropyKmax
            << ", h2p_share=" << bestScore.h2pShare
            << ", branches=" << bestScore.branches << ")\n";
        winners.push_back({best, bestScore});
    }

    std::sort(winners.begin(), winners.end(),
              [](const MinedCase &a, const MinedCase &b) {
                  if (a.score.score != b.score.score)
                      return a.score.score > b.score.score;
                  return a.fuzzCase.seed < b.fuzzCase.seed;
              });
    if (winners.size() > cfg.emitTop)
        winners.resize(cfg.emitTop);

    // Winners must still be correctness-clean before they are handed
    // out as workloads: run the full oracle set once per emitted
    // case. A divergence here is a real bug (the exit-1 path), kept
    // strictly apart from scorer failures.
    for (MinedCase &w : winners) {
        Expected<CaseOutcome> outcome = runCase(w.fuzzCase, env);
        if (!outcome.ok())
            return outcome.status();
        if (!outcome.value().passed()) {
            ++result.oracleFailures;
            log << "MINE " << w.fuzzCase.name
                << ": oracle divergence on mined case:\n";
            for (const FuzzReport &rep : outcome.value().failures)
                log << "  [" << oracleName(rep.oracle) << "] "
                    << rep.status.toString() << "\n";
            continue;
        }
        if (!cfg.emitDir.empty()) {
            const std::string path =
                cfg.emitDir + "/" + w.fuzzCase.name + ".pabp";
            Status written = writeCaseFile(path, w.fuzzCase);
            if (!written.ok())
                return written;
            result.emitted.push_back(path);
            log << "  wrote " << path << "\n";
        }
        result.top.push_back(w);
    }

    log << "mining: " << result.casesScored << " candidate(s), "
        << result.scorerFailures << " scorer failure(s), "
        << result.oracleFailures << " oracle failure(s), "
        << result.top.size() << " emitted winner(s)\n";
    return result;
}

} // namespace pabp::fuzz
