/**
 * @file
 * Adversarial workload mining: steer the PR-5 program generator
 * toward *hard* workloads instead of merely random ones.
 *
 * The campaign mode (fuzz_runner.hh) samples the generator-knob space
 * uniformly, which is right for finding correctness divergences but
 * wrong for finding workloads that stress the predictor: random knob
 * draws mostly produce branches a gshare resolves in a few hundred
 * events. This module adds a scored search. Each candidate case is
 *
 *  1. generated + compiled (both lowerings, predicated one recorded),
 *  2. characterized with the predictability analyzer
 *     (core/predictability.hh): taken/transition rates and
 *     history-conditioned entropy,
 *  3. replayed through a baseline engine and a +sfpf+pgu engine, and
 *  4. H2P-classified (core/h2p.hh) on the baseline profile,
 *
 * and scored by the selected strategy. "low-entropy-gap" rewards
 * programs whose branches stay high-entropy even under deep history
 * conditioning (the entropy *gap* between k=0 and k=max is low - a
 * local history does not explain the branch), with a bonus for a
 * concentrated H2P tier-0 mispredict share and for a visible
 * SFPF/PGU delta. A hill climb then mutates one generator knob at a
 * time, keeping improvements, from several random restarts; the top
 * cases are verified against the differential oracles and emitted as
 * ordinary `.pabp` files that replay anywhere.
 *
 * Failure taxonomy matters here (the exit-code contract in
 * tools/pabp_fuzz.cc): a case the *scorer* cannot evaluate (e.g. the
 * generated program has too few dynamic conditional branches to
 * characterize) is a scoring failure - reported distinctly (exit 3)
 * and never quarantined as a correctness failure - while an oracle
 * divergence on a mined case is a real bug (exit 1), exactly as in a
 * plain campaign.
 */

#ifndef PABP_FUZZ_MINING_HH
#define PABP_FUZZ_MINING_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/fuzz_runner.hh"
#include "fuzz/oracles.hh"

namespace pabp::fuzz {

/** Mining campaign parameters. */
struct MiningConfig
{
    /** Scoring strategy; "low-entropy-gap" is the only one so far. */
    std::string strategy = "low-entropy-gap";
    std::uint64_t baseSeed = 1;
    /** Hill-climb restarts (one derived case each). */
    unsigned restarts = 4;
    /** Knob mutations attempted per restart. */
    unsigned steps = 12;
    /** Emit the N best cases (after oracle verification). */
    unsigned emitTop = 3;
    /** Directory mined cases are written into ("" = none). */
    std::string emitDir;
    /** Scoring replay budget per candidate. */
    std::uint64_t maxInsts = 50'000;
    /** Measurement cell the scorer aligns with: the campaign draw's
     *  random predictor is right for correctness fuzzing but wrong
     *  here - a case mined against a random predictor does not
     *  transfer to the bench_e22 grid cell it is compared in. */
    std::string predictor = "gshare";
    unsigned sizeLog2 = 12;
};

/** What the scorer measured for one candidate. */
struct MiningScore
{
    double score = 0.0;
    /** Whole-trace conditional entropies at the smallest/largest k. */
    double entropyK0 = 0.0;
    double entropyKmax = 0.0;
    double takenRate = 0.0;
    double transitionRate = 0.0;
    /** Baseline tier-0 mispredicts / baseline branch lookups - the
     *  "H2P mispredict share" bench_e22 compares across workloads. */
    double h2pShare = 0.0;
    /** |baseline - sfpf+pgu| mispredicts per 1000 branches. */
    double techDeltaPerKilo = 0.0;
    /** Dynamic conditional branches scored. */
    std::uint64_t branches = 0;
};

/** One mined case with its score. */
struct MinedCase
{
    FuzzCase fuzzCase;
    MiningScore score;
};

/** What a mining campaign produced. */
struct MiningResult
{
    unsigned casesScored = 0;
    /** Candidates the scorer could not evaluate (exit-3 path). */
    unsigned scorerFailures = 0;
    /** Mined cases that failed oracle verification (exit-1 path). */
    unsigned oracleFailures = 0;
    /** Best cases, score-descending (ties: seed ascending). */
    std::vector<MinedCase> top;
    /** Paths written under MiningConfig::emitDir. */
    std::vector<std::string> emitted;

    bool clean() const
    {
        return scorerFailures == 0 && oracleFailures == 0;
    }
};

/**
 * Score one candidate. The error path is "could not score" - an
 * unknown predictor kind, a degenerate program (too few dynamic
 * conditional branches), or the injected self-check failure
 * (RunEnv::injectScorerFailure) - never a correctness verdict.
 */
Expected<MiningScore> scoreCase(const FuzzCase &fuzz_case,
                                const RunEnv &env,
                                const std::string &strategy);

/** Typed validation of a strategy name (CLI input). */
Status validateMiningStrategy(const std::string &strategy);

/**
 * Run the mining campaign: restarts x hill-climb steps, oracle-verify
 * the winners, emit the top cases. Deterministic in (cfg, env).
 * The Expected<> error path is setup-only (bad strategy, unwritable
 * emit dir); scorer and oracle failures are counted in the result.
 */
Expected<MiningResult> runMiningCampaign(const MiningConfig &cfg,
                                         const RunEnv &env,
                                         std::ostream &log);

} // namespace pabp::fuzz

#endif // PABP_FUZZ_MINING_HH
