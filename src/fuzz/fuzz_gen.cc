#include "fuzz/fuzz_gen.hh"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "sim/arch_state.hh"
#include "util/rng.hh"

namespace pabp::fuzz {

namespace {

/** Data registers generated code computes with. */
constexpr unsigned dataRegBase = 16;
constexpr unsigned dataRegCount = 24;
/** Loop counters: one register per nesting level. Sibling loops at
 *  the same level share a register safely (each re-initialises its
 *  counter before the loop head); an enclosing loop always uses a
 *  different level, so lifetimes never overlap. */
constexpr unsigned counterRegBase = 40;
/** Body outer repeat counter. */
constexpr unsigned repeatReg = 60;
/** Call-wrapper driver counter; never touched by generated bodies. */
constexpr unsigned driverReg = 61;
/** Data-branch stream index: walks the random-initialised window one
 *  word per data-branch execution. Shared by every data-branch item
 *  (the walk just strides faster), never touched by other items. */
constexpr unsigned streamReg = 62;

/** splitmix64-style stream splitter: independent rng streams per
 *  (seed, role) so one item's draws never shift another's. */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

class FuzzBuilder
{
  public:
    FuzzBuilder(IrFunction &fn, std::uint64_t seed,
                const FuzzProgramConfig &config)
        : builder(fn), baseSeed(seed), cfg(config)
    {}

    void
    build()
    {
        BlockId entry = builder.newBlock();
        BlockId outer_head = builder.newBlock();
        BlockId chain = builder.newBlock();
        BlockId done = builder.newBlock();

        builder.setBlock(entry);
        builder.append(makeMovImm(repeatReg, cfg.repeats));
        Rng init_rng(mix(baseSeed, 0x1217));
        for (unsigned r = 0; r < 6; ++r)
            builder.append(makeMovImm(
                dataReg(init_rng),
                static_cast<std::int64_t>(init_rng.below(1024))));
        builder.jump(outer_head);

        builder.setBlock(outer_head);
        builder.condBrImm(CmpRel::Gt, repeatReg, 0, chain, done);

        builder.setBlock(chain);
        // The branchy/straight decision per top-level item comes
        // from a dedicated stream with exactly one draw per item,
        // and each item's CONTENT comes from its own (seed, index)
        // stream: raising branchDensity flips some items from
        // straight to branchy without perturbing any other item,
        // which makes the static branch count monotone in the knob.
        Rng shape_rng(mix(baseSeed, 0x54a9e));
        std::vector<std::uint64_t> rolls;
        rolls.reserve(cfg.items);
        for (unsigned i = 0; i < cfg.items; ++i)
            rolls.push_back(shape_rng.below(100));
        for (unsigned i = 0; i < cfg.items; ++i) {
            Rng item_rng(mix(baseSeed, 0x17e30 + i));
            emitItem(item_rng, rolls[i]);
        }
        builder.append(makeAluImm(Opcode::Sub, repeatReg, repeatReg, 1));
        builder.jump(outer_head);

        builder.setBlock(done);
        builder.halt();
    }

  private:
    IrBuilder builder;
    std::uint64_t baseSeed;
    FuzzProgramConfig cfg;

    unsigned
    dataReg(Rng &rng)
    {
        return dataRegBase +
            static_cast<unsigned>(rng.below(dataRegCount));
    }

    /** A data register other than @p avoid (correlated pairs keep
     *  their condition register unwritten between the two tests). */
    unsigned
    dataRegExcept(Rng &rng, unsigned avoid)
    {
        unsigned r = dataRegBase + static_cast<unsigned>(
            rng.below(dataRegCount - 1));
        if (r >= avoid)
            ++r;
        return r;
    }

    static CmpRel
    randomRel(Rng &rng)
    {
        static const CmpRel rels[] = {CmpRel::Eq, CmpRel::Ne, CmpRel::Lt,
                                      CmpRel::Le, CmpRel::Gt, CmpRel::Ge,
                                      CmpRel::Ltu, CmpRel::Geu};
        return rels[rng.below(8)];
    }

    /** One random body op: ALU (including Div - a zero divisor is
     *  architecturally defined as 0), or a masked memory access. */
    void
    randomOp(Rng &rng)
    {
        static const Opcode ops[] = {Opcode::Add, Opcode::Sub,
                                     Opcode::Mul, Opcode::Div,
                                     Opcode::And, Opcode::Or,
                                     Opcode::Xor, Opcode::Shl,
                                     Opcode::Shr};
        std::uint64_t kind = rng.below(10);
        if (kind < 7) {
            Opcode op = ops[rng.below(9)];
            unsigned dst = dataReg(rng);
            unsigned src = dataReg(rng);
            if (rng.chance(0.5)) {
                std::int64_t imm =
                    static_cast<std::int64_t>(rng.below(64));
                if (op == Opcode::Shl || op == Opcode::Shr)
                    imm &= 7;
                builder.append(makeAluImm(op, dst, src, imm));
            } else {
                builder.append(makeAlu(op, dst, src, dataReg(rng)));
            }
        } else {
            // Bounded memory access: mask the address register into
            // the data window first, so execution never depends on
            // the emulator's memory geometry.
            unsigned addr = dataReg(rng);
            unsigned val = dataReg(rng);
            builder.append(makeAluImm(Opcode::And, addr, addr,
                                      cfg.dataWindow - 1));
            if (kind < 9)
                builder.append(makeLoad(val, addr, 0));
            else
                builder.append(makeStore(addr, 0, val));
        }
    }

    /** Division/overflow edge cases: INT64_MIN / -1 (defined to wrap
     *  to INT64_MIN), division by zero (defined as 0), and wrapping
     *  multiply/add at the signed boundary. */
    void
    emitDivEdges(Rng &rng)
    {
        constexpr std::int64_t int_min =
            std::numeric_limits<std::int64_t>::min();
        unsigned a = dataReg(rng);
        unsigned b = dataReg(rng);
        unsigned c = dataReg(rng);
        builder.append(makeMovImm(a, int_min));
        builder.append(makeMovImm(b, -1));
        builder.append(makeAlu(Opcode::Div, c, a, b));
        builder.append(makeAluImm(Opcode::Div, dataReg(rng), c, 0));
        builder.append(makeAlu(Opcode::Mul, dataReg(rng), a, a));
        builder.append(makeAlu(Opcode::Add, dataReg(rng), a, a));
        // A runtime-data divisor that may well be zero.
        builder.append(makeAlu(Opcode::Div, dataReg(rng),
                               dataReg(rng), dataReg(rng)));
    }

    void
    emitStraight(Rng &rng)
    {
        if (rng.below(100) < cfg.divEdgePercent)
            emitDivEdges(rng);
        unsigned count = 2 + static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < count; ++i)
            randomOp(rng);
    }

    /** Fill a diamond/triangle arm: a nested diamond while depth
     *  allows (predicate-nesting pressure), else straight code. */
    void
    fillArm(Rng &rng, BlockId arm, BlockId join, unsigned nest)
    {
        builder.setBlock(arm);
        if (nest < cfg.predNestDepth && rng.chance(0.4))
            emitDiamond(rng, nest + 1);
        else
            emitStraight(rng);
        builder.jump(join);
    }

    void
    emitDiamond(Rng &rng, unsigned nest)
    {
        BlockId then_b = builder.newBlock();
        BlockId else_b = builder.newBlock();
        BlockId join = builder.newBlock();
        if (rng.chance(0.3))
            builder.condBr(randomRel(rng), dataReg(rng), dataReg(rng),
                           then_b, else_b);
        else
            builder.condBrImm(randomRel(rng), dataReg(rng),
                              static_cast<std::int64_t>(rng.below(512)),
                              then_b, else_b);
        fillArm(rng, then_b, join, nest);
        fillArm(rng, else_b, join, nest);
        builder.setBlock(join);
    }

    void
    emitTriangle(Rng &rng)
    {
        BlockId body = builder.newBlock();
        BlockId join = builder.newBlock();
        builder.condBrImm(randomRel(rng), dataReg(rng),
                          static_cast<std::int64_t>(rng.below(512)),
                          body, join);
        fillArm(rng, body, join, 0);
        builder.setBlock(join);
    }

    void
    emitLoop(Rng &rng, unsigned loop_nest)
    {
        unsigned ctr = counterRegBase + loop_nest;
        std::int64_t trips =
            1 + static_cast<std::int64_t>(rng.below(4));

        BlockId head = builder.newBlock();
        BlockId body = builder.newBlock();
        BlockId exit = builder.newBlock();

        builder.append(makeMovImm(ctr, trips));
        builder.jump(head);

        builder.setBlock(head);
        builder.condBrImm(CmpRel::Gt, ctr, 0, body, exit);

        builder.setBlock(body);
        if (loop_nest + 1 < cfg.loopDepth && rng.chance(0.3))
            emitLoop(rng, loop_nest + 1);
        else
            emitStraight(rng);
        // Data-dependent break: a side edge out of the loop that
        // if-conversion turns into a region-based branch.
        if (rng.chance(0.4)) {
            BlockId cont = builder.newBlock();
            builder.condBrImm(randomRel(rng), dataReg(rng),
                              static_cast<std::int64_t>(rng.below(512)),
                              exit, cont);
            builder.setBlock(cont);
            randomOp(rng);
        }
        builder.append(makeAluImm(Opcode::Sub, ctr, ctr, 1));
        builder.jump(head);

        builder.setBlock(exit);
    }

    /** Two tests of the same (register, relation, immediate) with
     *  the register unwritten in between: the second branch's
     *  direction is fully determined by the first - the correlation
     *  the PGU recovers through predicate history. */
    void
    emitCorrelatedPair(Rng &rng)
    {
        unsigned reg = dataReg(rng);
        CmpRel rel = randomRel(rng);
        std::int64_t imm = static_cast<std::int64_t>(rng.below(256));
        for (int test = 0; test < 2; ++test) {
            BlockId body = builder.newBlock();
            BlockId join = builder.newBlock();
            builder.condBrImm(rel, reg, imm, body, join);
            builder.setBlock(body);
            unsigned count = 1 + static_cast<unsigned>(rng.below(3));
            for (unsigned i = 0; i < count; ++i)
                builder.append(makeAluImm(
                    Opcode::Add, dataRegExcept(rng, reg),
                    dataRegExcept(rng, reg),
                    static_cast<std::int64_t>(rng.below(32))));
            builder.jump(join);
            builder.setBlock(join);
        }
    }

    /** A data-driven diamond: stride streamReg one word through the
     *  random-initialised window and branch on the loaded value.
     *  Unlike the register-soup diamonds - whose operand dynamics
     *  collapse into short cycles any real predictor memorises - the
     *  stream walk reads fresh window entropy every execution, so
     *  the outcome sequence's period is the whole window, far beyond
     *  any realistic history length. This is the branch shape the
     *  suite's data-driven members (interp, filter) get from their
     *  inputs, made reachable by the mining climb. */
    void
    emitDataBranch(Rng &rng)
    {
        unsigned val = dataReg(rng);
        BlockId then_b = builder.newBlock();
        BlockId else_b = builder.newBlock();
        BlockId join = builder.newBlock();
        builder.append(
            makeAluImm(Opcode::Add, streamReg, streamReg, 1));
        builder.append(makeAluImm(Opcode::And, streamReg, streamReg,
                                  cfg.dataWindow - 1));
        builder.append(makeLoad(val, streamReg, 0));
        // Window words are uniform below 4096; a mid-window
        // threshold keeps the outcome distribution near even.
        builder.condBrImm(
            rng.chance(0.5) ? CmpRel::Lt : CmpRel::Ge, val,
            1024 + static_cast<std::int64_t>(rng.below(2048)),
            then_b, else_b);
        // Arms at full nest depth: fillArm falls through to straight
        // code, so the hard branch is never buried under nesting.
        fillArm(rng, then_b, join, cfg.predNestDepth);
        fillArm(rng, else_b, join, cfg.predNestDepth);
        builder.setBlock(join);
    }

    void
    emitItem(Rng &rng, std::uint64_t roll)
    {
        // Drawn ONLY when the knob is on: with dataBranchPercent ==
        // 0 (every config predating the knob, the whole replay
        // corpus) the rng sequence is untouched and old seeds
        // regenerate byte-identical programs.
        if (cfg.dataBranchPercent > 0 &&
            rng.below(100) < cfg.dataBranchPercent) {
            emitDataBranch(rng);
            return;
        }
        if (roll >= cfg.branchDensity) {
            emitStraight(rng);
            return;
        }
        std::uint64_t kind = rng.below(100);
        if (kind < 40)
            emitDiamond(rng, 0);
        else if (kind < 60)
            emitTriangle(rng);
        else if (kind < 85 && cfg.loopDepth > 0)
            emitLoop(rng, 0);
        else
            emitCorrelatedPair(rng);
    }
};

/**
 * Wrap a compiled body in a call/return driver:
 *
 *   driver:  r61 = 2 calls of a chain of callDepth procedures, the
 *            innermost of which calls the body; every Halt in the
 *            body becomes a Ret back into the chain.
 *   emptyRas: the driver's exit is a Ret on an EMPTY call stack
 *            (architecturally a halt - the emulator edge case), with
 *            the real Halt after it as the never-reached terminator
 *            that keeps validateProgram's fall-through rule happy.
 *
 * Both lowerings of a body are wrapped with identical rng draws, so
 * the wrapper adds the same architectural effects to each and the
 * if-conversion equivalence oracle still holds.
 */
Program
wrapProgram(const Program &body, const FuzzProgramConfig &cfg,
            std::uint64_t seed)
{
    constexpr unsigned outerCalls = 2;
    const unsigned chain = cfg.callDepth;
    Rng rng(mix(seed, 0xca11));

    struct ProcShape
    {
        unsigned before, after;
    };
    std::vector<ProcShape> procs(chain);
    for (ProcShape &p : procs) {
        p.before = 1 + static_cast<unsigned>(rng.below(3));
        p.after = 1 + static_cast<unsigned>(rng.below(2));
    }

    const unsigned driverLen = cfg.emptyRas ? 8 : 7;
    std::vector<std::uint32_t> procStart(chain);
    std::uint32_t pc = driverLen;
    for (unsigned k = 0; k < chain; ++k) {
        procStart[k] = pc;
        pc += procs[k].before + 1 + procs[k].after + 1;
    }
    const std::uint32_t bodyStart = pc;
    const std::uint32_t exitPc = 6;

    Program out;
    out.name = body.name + "+calls";
    out.insts.push_back(makeMovImm(driverReg, outerCalls));
    out.insts.push_back(
        makeCmpImm(CmpRel::Gt, CmpType::Normal, 62, 63, driverReg, 0));
    out.insts.push_back(makeBr(exitPc, 63)); // (p63) br exit
    out.insts.push_back(makeCall(chain ? procStart[0] : bodyStart));
    out.insts.push_back(makeAluImm(Opcode::Sub, driverReg, driverReg, 1));
    out.insts.push_back(makeBr(1));
    if (cfg.emptyRas)
        out.insts.push_back(makeRet()); // empty stack: halts
    out.insts.push_back(makeHalt());

    Rng op_rng(mix(seed, 0x0b5));
    auto procOp = [&op_rng]() {
        static const Opcode ops[] = {Opcode::Add, Opcode::Sub,
                                     Opcode::Xor, Opcode::Or};
        unsigned dst = dataRegBase +
            static_cast<unsigned>(op_rng.below(dataRegCount));
        unsigned src = dataRegBase +
            static_cast<unsigned>(op_rng.below(dataRegCount));
        return makeAluImm(ops[op_rng.below(4)], dst, src,
                          static_cast<std::int64_t>(op_rng.below(64)));
    };
    for (unsigned k = 0; k < chain; ++k) {
        for (unsigned i = 0; i < procs[k].before; ++i)
            out.insts.push_back(procOp());
        out.insts.push_back(
            makeCall(k + 1 < chain ? procStart[k + 1] : bodyStart));
        for (unsigned i = 0; i < procs[k].after; ++i)
            out.insts.push_back(procOp());
        out.insts.push_back(makeRet());
    }

    for (Inst inst : body.insts) {
        if (inst.op == Opcode::Br || inst.op == Opcode::Call)
            inst.target += bodyStart;
        else if (inst.op == Opcode::Halt)
            inst.op = Opcode::Ret; // return into the call chain
        out.insts.push_back(inst);
    }
    return out;
}

} // anonymous namespace

void
clampConfig(FuzzProgramConfig &cfg)
{
    cfg.items = std::clamp(cfg.items, 1u, 32u);
    cfg.branchDensity = std::min(cfg.branchDensity, 100u);
    cfg.predNestDepth = std::min(cfg.predNestDepth, 4u);
    cfg.loopDepth = std::min(cfg.loopDepth, 4u);
    cfg.callDepth = std::min(cfg.callDepth, 6u);
    cfg.hbPressure = std::min(cfg.hbPressure, 100u);
    cfg.divEdgePercent = std::min(cfg.divEdgePercent, 100u);
    cfg.dataBranchPercent = std::min(cfg.dataBranchPercent, 100u);
    cfg.repeats = std::clamp<std::int64_t>(cfg.repeats, 1, 4096);
    cfg.dataWindow = std::clamp<std::int64_t>(cfg.dataWindow, 16, 4096);
    // Round down to a power of two: the generator's address masks
    // assume dataWindow - 1 is an all-ones mask.
    while (cfg.dataWindow & (cfg.dataWindow - 1))
        cfg.dataWindow &= cfg.dataWindow - 1;
}

std::uint64_t
configFingerprint(const FuzzProgramConfig &cfg)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto feed = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    feed(cfg.items);
    feed(cfg.branchDensity);
    feed(cfg.predNestDepth);
    feed(cfg.loopDepth);
    feed(cfg.callDepth);
    feed(cfg.hbPressure);
    feed(cfg.divEdgePercent);
    feed(cfg.dataBranchPercent);
    feed(cfg.emptyRas ? 1 : 0);
    feed(static_cast<std::uint64_t>(cfg.dataWindow));
    feed(static_cast<std::uint64_t>(cfg.repeats));
    return h;
}

Workload
makeFuzzWorkload(std::uint64_t seed, const FuzzProgramConfig &config)
{
    FuzzProgramConfig cfg = config;
    clampConfig(cfg);

    Workload wl;
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(configFingerprint(cfg)));
    wl.name = "fuzz-" + std::to_string(seed) + "-" + fp;
    wl.fn.name = wl.name;

    FuzzBuilder fb(wl.fn, seed, cfg);
    fb.build();

    std::int64_t window = cfg.dataWindow;
    wl.init = [seed, window](ArchState &state) {
        Rng rng(mix(seed, 0xf00d));
        for (std::int64_t i = 0; i < window; ++i)
            state.writeMem(i, static_cast<std::int64_t>(rng.below(4096)));
    };
    wl.defaultSteps = 200'000;
    return wl;
}

CompileOptions
fuzzCompileOptions(const FuzzProgramConfig &config, bool if_convert)
{
    FuzzProgramConfig cfg = config;
    clampConfig(cfg);

    CompileOptions copts;
    copts.ifConvert = if_convert;
    // Corpus replay is tier-1: keep the profiling budget far below
    // the default 200k (region formation only needs coarse weights).
    copts.profileSteps = 30'000;
    const unsigned p = cfg.hbPressure;
    copts.heuristics.maxBlocks = 4 + p / 8;
    copts.heuristics.maxBodyInsts = 64 + 2 * p;
    copts.heuristics.minWeightRatio =
        0.25 * static_cast<double>(100 - p) / 100.0;
    copts.heuristics.minSeedExec = p >= 50 ? 1 : 8;
    return copts;
}

FuzzPrograms
buildFuzzPrograms(std::uint64_t seed, const FuzzProgramConfig &config)
{
    FuzzProgramConfig cfg = config;
    clampConfig(cfg);

    FuzzPrograms out;
    out.body = makeFuzzWorkload(seed, cfg);

    // compileWorkload copies are cheap relative to profiling; build
    // each lowering from its own workload copy so profile counters
    // written into the IR do not leak between modes.
    Workload branchy_wl = out.body;
    out.branchy =
        compileWorkload(branchy_wl, fuzzCompileOptions(cfg, false));
    Workload conv_wl = out.body;
    out.converted =
        compileWorkload(conv_wl, fuzzCompileOptions(cfg, true));

    if (cfg.callDepth > 0 || cfg.emptyRas) {
        out.branchy.prog = wrapProgram(out.branchy.prog, cfg, seed);
        out.converted.prog = wrapProgram(out.converted.prog, cfg, seed);
    }
    return out;
}

unsigned
staticCondBranches(const IrFunction &fn)
{
    unsigned count = 0;
    for (const BasicBlock &bb : fn.blocks)
        if (bb.term.kind == Terminator::Kind::CondBranch)
            ++count;
    return count;
}

} // namespace pabp::fuzz
