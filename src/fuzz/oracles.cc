#include "fuzz/oracles.hh"

#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "bpred/factory.hh"
#include "compiler/pred_verify.hh"
#include "core/checkpoint.hh"
#include "core/multictx.hh"
#include "pipeline/pipeline.hh"
#include "sim/decoded_trace.hh"
#include "sim/trace_io.hh"
#include "sweep.hh"
#include "util/journal.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace pabp::fuzz {

namespace {

/** Oracle emulators: the generator masks every address into the
 *  (<= 4096 word) data window, so a small memory keeps the memory
 *  comparison in sameArchOutcome() cheap. */
constexpr std::size_t oracleMemWords = 1u << 16;

/** Halt fuse for the run-to-completion oracles. Every generated
 *  program terminates (all loops are counted); the fuse only bounds
 *  a would-be generator bug. */
constexpr std::uint64_t haltBudget = 16'000'000;

Status
diverged(std::string what)
{
    return statusError(StatusCode::Corrupt, std::move(what));
}

/** Shared per-case artifacts, built once and reused by the oracles. */
struct CaseContext
{
    FuzzPrograms progs;
    bool haveTrace = false;
    RecordedTrace trace; ///< converted program, c.maxInsts budget

    const RecordedTrace &
    traceFor(const FuzzCase &c)
    {
        if (!haveTrace) {
            Emulator emu(progs.converted.prog,
                         EmuConfig{oracleMemWords, 0});
            if (progs.body.init)
                progs.body.init(emu.state());
            trace = recordTrace(emu, c.maxInsts);
            haveTrace = true;
        }
        return trace;
    }
};

Expected<PredictorPtr>
makeCasePredictor(const FuzzCase &c)
{
    return tryMakePredictor(c.predictor, c.sizeLog2);
}

/** Compact one-line digest of an EngineStats mismatch. */
std::string
statsDiff(const EngineStats &a, const EngineStats &b)
{
    std::ostringstream os;
    auto field = [&os](const char *name, std::uint64_t x,
                       std::uint64_t y) {
        if (x != y)
            os << " " << name << "=" << x << "/" << y;
    };
    field("insts", a.insts, b.insts);
    field("uncond", a.uncondBranches, b.uncondBranches);
    field("pdefs", a.predicateDefines, b.predicateDefines);
    field("branches", a.all.branches, b.all.branches);
    field("taken", a.all.taken, b.all.taken);
    field("mispredicts", a.all.mispredicts, b.all.mispredicts);
    field("squashed", a.all.squashed, b.all.squashed);
    field("falseGuard", a.all.falseGuard, b.all.falseGuard);
    field("region.branches", a.region.branches, b.region.branches);
    field("region.mispredicts", a.region.mispredicts,
          b.region.mispredicts);
    field("specSquashed", a.specSquashed, b.specSquashed);
    field("specSquashedWrong", a.specSquashedWrong,
          b.specSquashedWrong);
    field("btbTargetMisses", a.btbTargetMisses, b.btbTargetMisses);
    field("rasHits", a.rasHits, b.rasHits);
    field("rasMisses", a.rasMisses, b.rasMisses);
    std::string out = os.str();
    return out.empty() ? " (difference in a nested counter)" : out;
}

/** Serialised metric bytes of an engine - the strongest equality the
 *  replay oracle checks (docs/OBSERVABILITY.md byte-stable JSON). */
std::string
metricsBytes(PredictionEngine &engine)
{
    StatGroup group;
    engine.registerStats(group);
    MetricsExporter exporter;
    exporter.addGroup(group);
    std::ostringstream os;
    exporter.writeJson(os);
    return os.str();
}

// ---------------------------------------------------------------------
// Oracle 1: if-conversion round trip.

Status
oracleIfConvert(const FuzzCase &c, CaseContext &ctx)
{
    (void)c;
    const FuzzPrograms &p = ctx.progs;
    std::string err = verifyFunction(p.body.fn);
    if (!err.empty())
        return diverged("generated IR fails verifyFunction: " + err);
    err = validateProgram(p.branchy.prog);
    if (!err.empty())
        return diverged("branchy lowering fails validateProgram: " +
                        err);
    err = validateProgram(p.converted.prog);
    if (!err.empty())
        return diverged(
            "if-converted lowering fails validateProgram: " + err);
    err = verifyPredicatedProgram(p.converted.prog);
    if (!err.empty())
        return diverged("if-converted lowering fails pred_verify: " +
                        err);

    auto runToHalt = [&](Emulator &emu) {
        if (p.body.init)
            p.body.init(emu.state());
        emu.run(haltBudget);
    };
    Emulator branchy(p.branchy.prog, EmuConfig{oracleMemWords, haltBudget});
    runToHalt(branchy);
    Emulator converted(p.converted.prog,
                       EmuConfig{oracleMemWords, haltBudget});
    runToHalt(converted);

    if (!branchy.state().halted)
        return diverged("branchy program did not halt in " +
                        std::to_string(haltBudget) + " insts");
    if (!converted.state().halted)
        return diverged("if-converted program did not halt in " +
                        std::to_string(haltBudget) + " insts");
    for (unsigned r = 0; r < numGprs; ++r)
        if (branchy.state().readGpr(r) != converted.state().readGpr(r))
            return diverged(
                "if-conversion changed r" + std::to_string(r) + ": " +
                std::to_string(branchy.state().readGpr(r)) + " vs " +
                std::to_string(converted.state().readGpr(r)));
    if (!branchy.state().sameArchOutcome(converted.state()))
        return diverged("if-conversion changed memory contents");
    return {};
}

// ---------------------------------------------------------------------
// Oracle 2: emulator-driven vs pipeline-driven engine.

Status
oraclePipeline(const FuzzCase &c, CaseContext &ctx)
{
    const FuzzPrograms &p = ctx.progs;

    Expected<PredictorPtr> predA = makeCasePredictor(c);
    Expected<PredictorPtr> predB = makeCasePredictor(c);
    if (!predA.ok())
        return predA.status();
    if (!predB.ok())
        return predB.status();

    // The pipeline requires an engine with target modelling armed;
    // arm it on BOTH engines so the compared stats (which include the
    // BTB/RAS counters) are produced by identical configurations.
    EngineConfig ecfg = c.engine;
    ecfg.modelTargets = true;

    PredictionEngine engineA(*predA.value(), ecfg);
    Emulator emuA(p.converted.prog, EmuConfig{oracleMemWords, 0});
    if (p.body.init)
        p.body.init(emuA.state());
    runTrace(emuA, engineA, c.maxInsts);

    PredictionEngine engineB(*predB.value(), ecfg);
    Emulator emuB(p.converted.prog, EmuConfig{oracleMemWords, 0});
    if (p.body.init)
        p.body.init(emuB.state());
    Pipeline pipe(engineB, PipelineConfig{});
    pipe.run(emuB, c.maxInsts);

    if (emuA.instsExecuted() != emuB.instsExecuted())
        return diverged(
            "pipeline retired a different instruction count: " +
            std::to_string(emuA.instsExecuted()) + " vs " +
            std::to_string(emuB.instsExecuted()));
    if (!emuA.state().sameArchOutcome(emuB.state()))
        return diverged("pipeline run diverged architecturally from "
                        "the bare emulator");
    if (!(engineA.stats() == engineB.stats()))
        return diverged("engine stats differ between emulator-driven "
                        "and pipeline-driven runs:" +
                        statsDiff(engineA.stats(), engineB.stats()));
    if (!(engineA.branchProfile() == engineB.branchProfile()))
        return diverged("per-branch profiles differ between "
                        "emulator-driven and pipeline-driven runs");
    return {};
}

// ---------------------------------------------------------------------
// Oracle 3: reference replay vs fast batch replay.

Status
oracleReplay(const FuzzCase &c, CaseContext &ctx)
{
    const RecordedTrace &trace = ctx.traceFor(c);
    if (trace.size() == 0)
        return diverged("recorded trace is empty (generator bug)");

    Expected<PredictorPtr> predA = makeCasePredictor(c);
    Expected<PredictorPtr> predB = makeCasePredictor(c);
    if (!predA.ok())
        return predA.status();
    if (!predB.ok())
        return predB.status();

    PredictionEngine ref(*predA.value(), c.engine);
    std::uint64_t refProcessed = replayTrace(trace, ref, trace.size());

    DecodedTrace decoded = DecodedTrace::build(trace);
    PredictionEngine fast(*predB.value(), c.engine);
    std::uint64_t fastProcessed =
        fast.processBatch(decoded, 0, decoded.size());

    if (refProcessed != fastProcessed)
        return diverged("processed-count mismatch: reference " +
                        std::to_string(refProcessed) + " vs fast " +
                        std::to_string(fastProcessed));
    if (!(ref.stats() == fast.stats()))
        return diverged("fast replay stats diverge from reference:" +
                        statsDiff(ref.stats(), fast.stats()));
    if (!(ref.branchProfile() == fast.branchProfile()))
        return diverged(
            "fast replay per-branch profile diverges from reference");
    if (ref.pguBitsInserted() != fast.pguBitsInserted())
        return diverged(
            "PGU bits inserted differ: reference " +
            std::to_string(ref.pguBitsInserted()) + " vs fast " +
            std::to_string(fast.pguBitsInserted()));
    if (metricsBytes(ref) != metricsBytes(fast))
        return diverged("exported metrics bytes differ between "
                        "reference and fast replay");

    // The first fast replay captured a replay schedule on the decoded
    // trace (sim/replay_schedule.hh); a second replay takes the cache
    // HIT path - cached guards, word-at-a-time PGU drain, restored
    // predicate-file exit state - and must still match the reference
    // byte for byte.
    Expected<PredictorPtr> predC = makeCasePredictor(c);
    if (!predC.ok())
        return predC.status();
    PredictionEngine hit(*predC.value(), c.engine);
    const std::uint64_t hitProcessed =
        hit.processBatch(decoded, 0, decoded.size());
    if (refProcessed != hitProcessed)
        return diverged(
            "schedule-cache hit processed-count mismatch: reference " +
            std::to_string(refProcessed) + " vs hit " +
            std::to_string(hitProcessed));
    if (!(ref.stats() == hit.stats()))
        return diverged("schedule-cache hit replay stats diverge from "
                        "reference:" +
                        statsDiff(ref.stats(), hit.stats()));
    if (!(ref.branchProfile() == hit.branchProfile()))
        return diverged("schedule-cache hit replay per-branch profile "
                        "diverges from reference");
    if (ref.pguBitsInserted() != hit.pguBitsInserted())
        return diverged(
            "schedule-cache hit PGU bits differ: reference " +
            std::to_string(ref.pguBitsInserted()) + " vs hit " +
            std::to_string(hit.pguBitsInserted()));
    if (metricsBytes(ref) != metricsBytes(hit))
        return diverged("exported metrics bytes differ between "
                        "reference and schedule-cache hit replay");

    // Chunked replay with a case-derived batch size: each chunk keys
    // its own schedule on the carried predicate state, so awkward
    // chunk boundaries (mid define-visibility window) probe the
    // capture/restore seams the one-shot replay never crosses. Two
    // passes: the first captures per-chunk schedules, the second hits
    // every one.
    const std::uint64_t chunk = 1 + (c.seed % 97) % decoded.size();
    for (int pass = 0; pass < 2; ++pass) {
        Expected<PredictorPtr> predD = makeCasePredictor(c);
        if (!predD.ok())
            return predD.status();
        PredictionEngine chunked(*predD.value(), c.engine);
        std::uint64_t cursor = 0;
        while (cursor < decoded.size())
            cursor = chunked.processBatch(decoded, cursor, chunk);
        if (cursor != refProcessed)
            return diverged(
                "chunked replay cursor mismatch (chunk " +
                std::to_string(chunk) + ", pass " +
                std::to_string(pass) + "): reference " +
                std::to_string(refProcessed) + " vs " +
                std::to_string(cursor));
        if (!(ref.stats() == chunked.stats()))
            return diverged("chunked fast replay stats diverge from "
                            "reference (chunk " +
                            std::to_string(chunk) + ", pass " +
                            std::to_string(pass) + "):" +
                            statsDiff(ref.stats(), chunked.stats()));
        if (!(ref.branchProfile() == chunked.branchProfile()))
            return diverged(
                "chunked fast replay per-branch profile diverges "
                "from reference (chunk " +
                std::to_string(chunk) + ", pass " +
                std::to_string(pass) + ")");
        if (ref.pguBitsInserted() != chunked.pguBitsInserted())
            return diverged(
                "chunked fast replay PGU bits differ (chunk " +
                std::to_string(chunk) + ", pass " +
                std::to_string(pass) + ")");
    }
    return {};
}

// ---------------------------------------------------------------------
// Oracle 4: checkpoint/resume vs straight-through.

Status
oracleCheckpoint(const FuzzCase &c, CaseContext &ctx, const RunEnv &env)
{
    const RecordedTrace &trace = ctx.traceFor(c);
    if (trace.size() == 0)
        return diverged("recorded trace is empty (generator bug)");

    // The replay entry point under test, with the optional harness
    // self-check: reintroduce the PR-4 clamp bug (a past-the-end
    // cursor yanked back to trace.size()) to prove the oracle and
    // the shrinker catch it.
    auto replayFrom = [&env](const RecordedTrace &t,
                             PredictionEngine &e, std::uint64_t first,
                             std::uint64_t max) -> std::uint64_t {
        if (env.injectClampBug && first >= t.size())
            return t.size();
        return replayTraceFrom(t, e, first, max);
    };

    Expected<PredictorPtr> preds[3] = {makeCasePredictor(c),
                                       makeCasePredictor(c),
                                       makeCasePredictor(c)};
    for (const auto &p : preds)
        if (!p.ok())
            return p.status();

    PredictionEngine straight(*preds[0].value(), c.engine);
    replayFrom(trace, straight, 0, trace.size());

    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      configFingerprint(c.gen) ^ c.seed));
    const std::string ckpt =
        env.scratchDir + "/pabp-fuzz-" + fp + ".ckpt";

    PredictionEngine first(*preds[1].value(), c.engine);
    std::uint64_t half = trace.size() / 2;
    std::uint64_t pos = replayFrom(trace, first, 0, half);
    PABP_TRY(saveCheckpoint(ckpt,
                            CheckpointRefs{nullptr, &first, &pos}));

    PredictionEngine resumed(*preds[2].value(), c.engine);
    std::uint64_t resumedPos = 0;
    PABP_TRY(loadCheckpoint(
        ckpt, CheckpointRefs{nullptr, &resumed, &resumedPos}));
    if (resumedPos != pos)
        return diverged("restored stream position " +
                        std::to_string(resumedPos) +
                        " != saved position " + std::to_string(pos));
    replayFrom(trace, resumed, resumedPos, trace.size());

    if (!(straight.stats() == resumed.stats()))
        return diverged(
            "checkpoint/resume stats diverge from straight-through:" +
            statsDiff(straight.stats(), resumed.stats()));
    if (!(straight.branchProfile() == resumed.branchProfile()))
        return diverged("checkpoint/resume per-branch profile "
                        "diverges from straight-through");

    // Clamped-cursor contract: a resume cursor past the end of a
    // (shorter) trace processes nothing and comes back UNCHANGED -
    // yanking it backwards silently re-runs events (the PR-4 bug).
    const std::uint64_t past = trace.size() + 3;
    EngineStats before = resumed.stats();
    std::uint64_t got = replayFrom(trace, resumed, past, 1000);
    if (got != past)
        return diverged(
            "replayTraceFrom moved a past-the-end cursor: gave " +
            std::to_string(past) + ", got back " +
            std::to_string(got) + " (trace size " +
            std::to_string(trace.size()) + ")");
    if (!(resumed.stats() == before))
        return diverged("replayTraceFrom with a past-the-end cursor "
                        "changed engine stats:" +
                        statsDiff(before, resumed.stats()));
    return {};
}

// ---------------------------------------------------------------------
// Oracle 5: corrupted-trace robustness.

/** One corruption recipe applied to the serialised bytes. */
struct CorruptSpec
{
    unsigned flips = 0;
    std::uint64_t rngSeed = 0;
    unsigned truncate = 0;
};

std::string
corrupt(const std::string &bytes, const CorruptSpec &spec)
{
    std::string out = bytes;
    if (spec.truncate > 0) {
        std::size_t cut =
            spec.truncate >= out.size() ? 0 : out.size() - spec.truncate;
        out.resize(cut);
    }
    if (!out.empty()) {
        Rng rng(spec.rngSeed ? spec.rngSeed : 0xc0ffee);
        for (unsigned i = 0; i < spec.flips; ++i) {
            std::size_t byte = rng.below(out.size());
            out[byte] = static_cast<char>(
                static_cast<unsigned char>(out[byte]) ^
                (1u << rng.below(8)));
        }
    }
    return out;
}

bool
sameProgram(const Program &a, const Program &b)
{
    if (a.insts.size() != b.insts.size())
        return false;
    for (std::size_t i = 0; i < a.insts.size(); ++i)
        if (!(encode(a.insts[i]) == encode(b.insts[i])))
            return false;
    return true;
}

Status
checkCorrupted(const RecordedTrace &original, const std::string &bytes,
               const CorruptSpec &spec)
{
    auto describe = [&spec]() {
        return std::to_string(spec.flips) + " flip(s), truncate " +
            std::to_string(spec.truncate) + ", rng seed " +
            std::to_string(spec.rngSeed);
    };

    // Strict read: either a typed error or - if the corruption was
    // somehow undetectable - byte-identical content. Anything else is
    // silent divergence.
    {
        std::istringstream in(bytes);
        Expected<RecordedTrace> strict = readTrace(in);
        if (strict.ok()) {
            if (!sameProgram(strict.value().prog, original.prog) ||
                strict.value().events != original.events)
                return diverged("strict read of a corrupted trace "
                                "returned Ok with DIFFERENT content (" +
                                describe() + ")");
        }
    }

    // Salvage read: a typed error, or a valid prefix of the original
    // events over an intact program.
    {
        std::istringstream in(bytes);
        TraceReadOptions opts;
        opts.salvage = true;
        TraceReadInfo info;
        Expected<RecordedTrace> salvaged = readTrace(in, opts, &info);
        if (salvaged.ok()) {
            const RecordedTrace &s = salvaged.value();
            if (!sameProgram(s.prog, original.prog))
                return diverged(
                    "salvage returned Ok with a corrupted program "
                    "section (" + describe() + ")");
            if (s.events.size() > original.events.size())
                return diverged("salvage returned MORE events than "
                                "were written (" + describe() + ")");
            for (std::size_t i = 0; i < s.events.size(); ++i)
                if (!(s.events[i] == original.events[i]))
                    return diverged(
                        "salvaged event " + std::to_string(i) +
                        " is not a prefix of the original (" +
                        describe() + ")");
        }
    }
    return {};
}

Status
oracleTrace(const FuzzCase &c, CaseContext &ctx)
{
    const RecordedTrace &trace = ctx.traceFor(c);
    std::ostringstream os;
    writeTrace(trace, os);
    const std::string bytes = os.str();

    std::vector<CorruptSpec> schedule;
    if (c.corruptFlips > 0 || c.corruptTruncate > 0) {
        schedule.push_back(
            {c.corruptFlips, c.corruptSeed, c.corruptTruncate});
    } else {
        // Default schedule, derived from the case seed: single flip,
        // burst of flips, tail truncation, and both at once.
        std::uint64_t s = c.seed ^ 0x77ace;
        schedule.push_back({1, s + 1, 0});
        schedule.push_back({3, s + 2, 0});
        schedule.push_back(
            {0, s + 3,
             static_cast<unsigned>(1 + bytes.size() / 8)});
        schedule.push_back({1, s + 4, 7});
    }
    for (const CorruptSpec &spec : schedule)
        PABP_TRY(checkCorrupted(trace, corrupt(bytes, spec), spec));
    return {};
}

// ---------------------------------------------------------------------
// Oracle 6: sweep-cell fast vs reference (oracle reuse of runOne).

Status
oracleSweep(const FuzzCase &c, CaseContext &ctx)
{
    bench::RunSpec spec;
    spec.workload = ctx.progs.body.name; // unique: fuzz-<seed>-<fp>
    FuzzProgramConfig gen = c.gen;
    spec.factory = [gen](std::uint64_t seed) {
        return makeFuzzWorkload(seed, gen);
    };
    spec.seed = c.seed;
    spec.predictor = c.predictor;
    spec.sizeLog2 = c.sizeLog2;
    spec.ifConvert = true;
    spec.engine = c.engine;
    spec.compile = fuzzCompileOptions(c.gen, true);
    spec.maxInsts = c.maxInsts;

    bench::SweepRunner runner(bench::SweepRunner::Config{1, 0});
    spec.fastReplay = true;
    bench::RunResult fast = runner.runOne(spec);
    spec.fastReplay = false;
    bench::RunResult ref = runner.runOne(spec);

    if (!fast.status.ok())
        return diverged("sweep cell failed under fast replay: " +
                        fast.status.toString());
    if (!ref.status.ok())
        return diverged("sweep cell failed under reference replay: " +
                        ref.status.toString());
    if (!(fast.engine == ref.engine))
        return diverged("sweep cell stats differ between fast and "
                        "reference replay:" +
                        statsDiff(ref.engine, fast.engine));
    if (!(fast.profile == ref.profile))
        return diverged("sweep cell per-branch profiles differ "
                        "between fast and reference replay");
    if (fast.pguBits != ref.pguBits)
        return diverged("sweep cell PGU bit counts differ: fast " +
                        std::to_string(fast.pguBits) +
                        " vs reference " + std::to_string(ref.pguBits));
    return {};
}

// ---------------------------------------------------------------------
// Oracle 7: corrupted results-journal robustness (the PABPJRN1
// mirror of the trace oracle; util/journal.hh).

/** Deterministic journal image synthesised from the case seed - the
 *  journal's content does not depend on simulation, so the oracle
 *  fabricates records instead of running cells. */
std::string
synthesizeJournal(const FuzzCase &c,
                  std::vector<JournalRecord> &records)
{
    Rng rng(c.seed ^ 0x9a11);
    const unsigned count = 2 + static_cast<unsigned>(rng.below(5));
    records.clear();
    for (unsigned i = 0; i < count; ++i) {
        JournalRecord rec;
        rec.kind = rng.below(4) == 0 ? JournalRecord::Kind::Quarantine
                                     : JournalRecord::Kind::Result;
        rec.fingerprint = rng.next();
        rec.attempts = 1 + static_cast<std::uint32_t>(rng.below(3));
        rec.statusCode = rec.kind == JournalRecord::Kind::Quarantine
            ? static_cast<std::uint8_t>(StatusCode::Corrupt)
            : 0;
        for (unsigned col = 0; col < 6; ++col)
            rec.columns.push_back(rng.next());
        rec.blob = rec.kind == JournalRecord::Kind::Quarantine
            ? std::string("synthetic quarantine ") + std::to_string(i)
            : std::string("{\"cell\":") + std::to_string(i) + "}";
        records.push_back(rec);
    }
    std::ostringstream os;
    writeJournalHeader(os, JournalHeader{});
    for (const JournalRecord &rec : records)
        appendJournalRecord(os, rec);
    return os.str();
}

Status
checkCorruptedJournal(const std::vector<JournalRecord> &original,
                      const std::string &bytes, const CorruptSpec &spec,
                      const RunEnv &env, const FuzzCase &c)
{
    auto describe = [&spec]() {
        return std::to_string(spec.flips) + " flip(s), truncate " +
            std::to_string(spec.truncate) + ", rng seed " +
            std::to_string(spec.rngSeed);
    };

    // Strict read: a typed error, or - if the corruption was
    // undetectable - identical records.
    {
        Expected<std::vector<JournalRecord>> strict =
            readJournalImage(bytes);
        if (strict.ok() && !(strict.value() == original))
            return diverged("strict read of a corrupted journal "
                            "returned Ok with DIFFERENT records (" +
                            describe() + ")");
    }

    // Salvage read: a typed error (header damage), or a prefix of
    // the original records.
    {
        JournalReadOptions opts;
        opts.salvage = true;
        JournalReadInfo info;
        Expected<std::vector<JournalRecord>> salvaged =
            readJournalImage(bytes, opts, nullptr, &info);
        if (salvaged.ok()) {
            const std::vector<JournalRecord> &s = salvaged.value();
            if (s.size() > original.size())
                return diverged("journal salvage returned MORE "
                                "records than were written (" +
                                describe() + ")");
            for (std::size_t i = 0; i < s.size(); ++i)
                if (!(s[i] == original[i]))
                    return diverged(
                        "salvaged journal record " +
                        std::to_string(i) +
                        " is not a prefix of the original (" +
                        describe() + ")");
        }
    }

    // Writer adoption: open() on the damaged file either fails with
    // a typed error or truncates to a valid prefix - and a second
    // open sees exactly what the first left behind (idempotence).
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      configFingerprint(c.gen) ^ c.seed));
    const std::string path =
        env.scratchDir + "/pabp-fuzz-" + fp + ".pabpj";
    PABP_TRY(atomicWriteFile(path, bytes));
    std::vector<JournalRecord> first_seen;
    Expected<JournalWriter> first =
        JournalWriter::open(path, JournalHeader{}, &first_seen);
    Status verdict;
    if (first.ok()) {
        first.value().close();
        if (first_seen.size() > original.size()) {
            verdict = diverged("JournalWriter::open adopted MORE "
                               "records than were written (" +
                               describe() + ")");
        } else {
            std::vector<JournalRecord> second_seen;
            Expected<JournalWriter> second =
                JournalWriter::open(path, JournalHeader{},
                                    &second_seen);
            if (!second.ok()) {
                verdict = diverged(
                    "journal re-open after salvage truncation "
                    "failed: " + second.status().toString() + " (" +
                    describe() + ")");
            } else {
                second.value().close();
                if (!(second_seen == first_seen))
                    verdict = diverged(
                        "journal salvage truncation is not "
                        "idempotent (" + describe() + ")");
            }
        }
    }
    std::remove(path.c_str());
    return verdict;
}

Status
oracleJournal(const FuzzCase &c, const RunEnv &env)
{
    std::vector<JournalRecord> records;
    const std::string bytes = synthesizeJournal(c, records);

    std::vector<CorruptSpec> schedule;
    if (c.corruptFlips > 0 || c.corruptTruncate > 0) {
        schedule.push_back(
            {c.corruptFlips, c.corruptSeed, c.corruptTruncate});
    } else {
        // Mirror of the trace oracle's default schedule: single flip,
        // burst, tail truncation, and both at once.
        std::uint64_t s = c.seed ^ 0x77ace;
        schedule.push_back({1, s + 1, 0});
        schedule.push_back({3, s + 2, 0});
        schedule.push_back(
            {0, s + 3,
             static_cast<unsigned>(1 + bytes.size() / 8)});
        schedule.push_back({1, s + 4, 7});
    }
    for (const CorruptSpec &spec : schedule)
        PABP_TRY(checkCorruptedJournal(records, corrupt(bytes, spec),
                                       spec, env, c));
    return {};
}

// ---------------------------------------------------------------------
// Oracle 8: multi-context replay (core/multictx.hh). With
// contexts == 1 a 1-context replayer must be byte-identical to the
// ordinary single-stream batch loop - the schedule machinery adds
// nothing. With contexts > 1 the fast (decoded-trace) and reference
// (live-emulator) interleaved replays must agree context for context,
// and a repeated fast run must reproduce itself exactly.

Status
oracleMultiCtx(const FuzzCase &c, CaseContext &ctx)
{
    MultiCtxConfig mcfg;
    mcfg.schedule.contexts = c.contexts ? c.contexts : 1;
    mcfg.schedule.kind = c.ctxSchedule;
    mcfg.schedule.quantum = c.ctxQuantum ? c.ctxQuantum : 1;
    mcfg.schedule.seed = c.ctxSeed;
    mcfg.sharedHistory = c.ctxShared;
    mcfg.tagBits = c.ctxTagBits;
    mcfg.engine = c.engine;
    const unsigned n = mcfg.schedule.contexts;

    if (n == 1) {
        const RecordedTrace &trace = ctx.traceFor(c);
        if (trace.size() == 0)
            return diverged("recorded trace is empty (generator bug)");
        DecodedTrace decoded = DecodedTrace::build(trace);

        Expected<PredictorPtr> predA = makeCasePredictor(c);
        Expected<PredictorPtr> predB = makeCasePredictor(c);
        if (!predA.ok())
            return predA.status();
        if (!predB.ok())
            return predB.status();

        MultiContextReplayer replayer(*predA.value(), mcfg);
        replayer.replayDecoded({&decoded}, c.maxInsts);

        PredictionEngine single(*predB.value(), c.engine);
        single.processBatch(decoded, 0, decoded.size());

        PredictionEngine &only = replayer.engine(0);
        if (!(only.stats() == single.stats()))
            return diverged(
                "1-context replay stats diverge from the "
                "single-stream loop:" +
                statsDiff(single.stats(), only.stats()));
        if (!(only.branchProfile() == single.branchProfile()))
            return diverged("1-context replay per-branch profile "
                            "diverges from the single-stream loop");
        if (only.pguBitsInserted() != single.pguBitsInserted())
            return diverged("1-context replay PGU bits differ from "
                            "the single-stream loop");
        if (metricsBytes(only) != metricsBytes(single))
            return diverged("1-context replay metrics bytes differ "
                            "from the single-stream loop");
        return {};
    }

    // Context k replays the shared converted program from input seed
    // c.seed + k (the same per-context seeding the sweep uses; the
    // generator's init closure depends only on (seed, dataWindow)).
    std::vector<RecordedTrace> recorded;
    std::vector<DecodedTrace> decoded;
    for (unsigned k = 0; k < n; ++k) {
        Emulator emu(ctx.progs.converted.prog,
                     EmuConfig{oracleMemWords, 0});
        makeFuzzWorkload(c.seed + k, c.gen).init(emu.state());
        recorded.push_back(recordTrace(emu, c.maxInsts));
        if (recorded.back().size() == 0)
            return diverged("recorded trace for context " +
                            std::to_string(k) +
                            " is empty (generator bug)");
        decoded.push_back(DecodedTrace::build(recorded.back()));
    }
    std::vector<const DecodedTrace *> lanes;
    for (const DecodedTrace &d : decoded)
        lanes.push_back(&d);

    Expected<PredictorPtr> preds[3] = {makeCasePredictor(c),
                                       makeCasePredictor(c),
                                       makeCasePredictor(c)};
    for (const auto &p : preds)
        if (!p.ok())
            return p.status();

    MultiContextReplayer fast(*preds[0].value(), mcfg);
    const std::uint64_t fastTotal =
        fast.replayDecoded(lanes, c.maxInsts);

    std::vector<std::unique_ptr<Emulator>> emus;
    std::vector<Emulator *> emuPtrs;
    for (unsigned k = 0; k < n; ++k) {
        emus.push_back(std::make_unique<Emulator>(
            ctx.progs.converted.prog, EmuConfig{oracleMemWords, 0}));
        makeFuzzWorkload(c.seed + k, c.gen).init(emus.back()->state());
        emuPtrs.push_back(emus.back().get());
    }
    MultiContextReplayer ref(*preds[1].value(), mcfg);
    const std::uint64_t refTotal =
        ref.replayEmulated(emuPtrs, c.maxInsts);

    if (fastTotal != refTotal)
        return diverged("multi-context processed-count mismatch: "
                        "fast " + std::to_string(fastTotal) +
                        " vs reference " + std::to_string(refTotal));
    for (unsigned k = 0; k < n; ++k) {
        PredictionEngine &f = fast.engine(k);
        PredictionEngine &r = ref.engine(k);
        const std::string who = "context " + std::to_string(k);
        if (!(f.stats() == r.stats()))
            return diverged("multi-context stats diverge between "
                            "fast and reference replay for " + who +
                            ":" + statsDiff(r.stats(), f.stats()));
        if (!(f.branchProfile() == r.branchProfile()))
            return diverged("multi-context per-branch profile "
                            "diverges between fast and reference "
                            "replay for " + who);
        if (f.pguBitsInserted() != r.pguBitsInserted())
            return diverged("multi-context PGU bits diverge between "
                            "fast and reference replay for " + who);
        if (metricsBytes(f) != metricsBytes(r))
            return diverged("multi-context metrics bytes diverge "
                            "between fast and reference replay for " +
                            who);
    }

    // Determinism: the same lanes + schedule reproduce themselves.
    MultiContextReplayer again(*preds[2].value(), mcfg);
    again.replayDecoded(lanes, c.maxInsts);
    for (unsigned k = 0; k < n; ++k)
        if (!(again.engine(k).stats() == fast.engine(k).stats()))
            return diverged(
                "multi-context replay is not deterministic: repeated "
                "run diverges for context " + std::to_string(k) + ":" +
                statsDiff(fast.engine(k).stats(),
                          again.engine(k).stats()));
    return {};
}

Status
runOracleWith(Oracle oracle, const FuzzCase &c, const RunEnv &env,
              CaseContext &ctx)
{
    switch (oracle) {
      case Oracle::IfConvert: return oracleIfConvert(c, ctx);
      case Oracle::Pipeline: return oraclePipeline(c, ctx);
      case Oracle::Replay: return oracleReplay(c, ctx);
      case Oracle::Checkpoint: return oracleCheckpoint(c, ctx, env);
      case Oracle::Trace: return oracleTrace(c, ctx);
      case Oracle::Sweep: return oracleSweep(c, ctx);
      case Oracle::Journal: return oracleJournal(c, env);
      case Oracle::MultiCtx: return oracleMultiCtx(c, ctx);
    }
    return statusError(StatusCode::InvalidArgument,
                       "unknown oracle id");
}

} // anonymous namespace

Status
runOracle(Oracle oracle, const FuzzCase &fuzz_case, const RunEnv &env)
{
    CaseContext ctx;
    ctx.progs = buildFuzzPrograms(fuzz_case.seed, fuzz_case.gen);
    return runOracleWith(oracle, fuzz_case, env, ctx);
}

Expected<CaseOutcome>
runCase(const FuzzCase &fuzz_case, const RunEnv &env)
{
    // Reject setup problems before any oracle runs, so a typo'd
    // predictor name is a usage error (exit 2), not a "divergence".
    Expected<PredictorPtr> probe = makeCasePredictor(fuzz_case);
    if (!probe.ok())
        return probe.status();
    if (fuzz_case.maxInsts == 0)
        return statusError(StatusCode::InvalidArgument,
                           "fuzz case: max_insts must be > 0");

    CaseContext ctx;
    ctx.progs = buildFuzzPrograms(fuzz_case.seed, fuzz_case.gen);

    CaseOutcome outcome;
    const Oracle order[] = {Oracle::IfConvert, Oracle::Pipeline,
                            Oracle::Replay, Oracle::Checkpoint,
                            Oracle::Trace, Oracle::Sweep,
                            Oracle::Journal, Oracle::MultiCtx};
    for (Oracle o : order) {
        if (!(fuzz_case.oracles & static_cast<unsigned>(o)))
            continue;
        outcome.oraclesRun |= static_cast<unsigned>(o);
        Status verdict = runOracleWith(o, fuzz_case, env, ctx);
        if (!verdict.ok())
            outcome.failures.push_back(FuzzReport{o, verdict});
    }
    return outcome;
}

} // namespace pabp::fuzz
