/**
 * @file
 * The `.pabp` fuzz-case format: a self-contained text reproducer.
 *
 * A case pins everything a failure needs to replay - generator seed +
 * knobs, predictor spec, engine configuration, oracle selection, and
 * (for the trace-corruption oracle) the corruption schedule. Because
 * program generation is deterministic in (seed, knobs), the case file
 * does not carry the program itself; the shrinker minimises over the
 * knobs and the replay regenerates the program from them.
 *
 * Format: `key=value` lines, `#` comments, unknown keys rejected (a
 * typo must not silently weaken a regression case). Canonical output
 * of formatCase() round-trips through parseCase() field-for-field.
 */

#ifndef PABP_FUZZ_FUZZ_CASE_HH
#define PABP_FUZZ_FUZZ_CASE_HH

#include <cstdint>
#include <string>

#include "core/engine.hh"
#include "fuzz/fuzz_gen.hh"
#include "sim/context_schedule.hh"
#include "util/status.hh"

namespace pabp::fuzz {

/** The differential oracles, as bitmask positions. */
enum class Oracle : unsigned
{
    IfConvert = 1u << 0,  ///< branchy vs if-converted arch state
    Pipeline = 1u << 1,   ///< trace-driven vs pipeline-driven engine
    Replay = 1u << 2,     ///< reference replay vs fast batch replay
    Checkpoint = 1u << 3, ///< mid-trace save/resume vs straight-through
    Trace = 1u << 4,      ///< corrupt PABPTRC2: typed error or salvage
    Sweep = 1u << 5,      ///< SweepRunner cell fast vs reference
    Journal = 1u << 6,    ///< corrupt PABPJRN1: typed error or salvage
    MultiCtx = 1u << 7,   ///< interleaved contexts: fast vs reference,
                          ///< and N=1 identical to single-stream
};

constexpr unsigned allOracles = 0xff;

/** Stable lower-case oracle name ("ifconvert", "replay", ...). */
const char *oracleName(Oracle oracle);

/** Parse "all" or a comma list of oracle names into a mask. */
Expected<unsigned> parseOracleMask(const std::string &text);

/** Canonical text for a mask ("all" or a comma list). */
std::string formatOracleMask(unsigned mask);

/**
 * Engine-flag spec string: "base" or '+'-joined tokens from
 * {sfpf, pgu, spec, jrs, train, consdef}. "jrs" implies "spec"
 * with the JRS confidence gate. availDelay travels separately
 * (it is numeric, not a flag).
 */
std::string engineSpecString(const EngineConfig &cfg);
Expected<EngineConfig> parseEngineSpec(const std::string &spec);

/** One self-contained fuzz case. */
struct FuzzCase
{
    std::string name = "unnamed";
    std::uint64_t seed = 1;
    std::string predictor = "gshare";
    unsigned sizeLog2 = 12;
    EngineConfig engine;
    unsigned oracles = allOracles;
    std::uint64_t maxInsts = 20'000;
    FuzzProgramConfig gen;

    /** @name Trace-corruption schedule (Oracle::Trace)
     *  @{ */
    unsigned corruptFlips = 0;     ///< single-bit flips applied
    std::uint64_t corruptSeed = 0; ///< rng stream picking positions
    unsigned corruptTruncate = 0;  ///< bytes chopped off the end
    /** @} */

    /** @name Multi-context interleaving (Oracle::MultiCtx)
     *  With contexts == 1 the oracle pins the N=1 identity (a
     *  1-context replay is byte-identical to the single-stream loop);
     *  with contexts > 1 it pins fast vs reference multi-context
     *  replay. Context c replays the same program from input seed
     *  seed + c.
     *  @{ */
    unsigned contexts = 1;
    ScheduleKind ctxSchedule = ScheduleKind::RoundRobin;
    std::uint64_t ctxQuantum = 256;
    std::uint64_t ctxSeed = 1;    ///< bursty schedule draw seed
    bool ctxShared = true;        ///< shared vs per-context history
    unsigned ctxTagBits = 0;      ///< context bits mixed into indices
    /** @} */
};

/** Parse a case from its text form. Unknown keys are ParseErrors. */
Expected<FuzzCase> parseCase(const std::string &text);

/** Canonical text form (round-trips through parseCase()). */
std::string formatCase(const FuzzCase &fuzz_case);

/** Read + parse a case file. */
Expected<FuzzCase> readCaseFile(const std::string &path);

/** Write a case file (canonical form). */
Status writeCaseFile(const std::string &path, const FuzzCase &fuzz_case);

} // namespace pabp::fuzz

#endif // PABP_FUZZ_FUZZ_CASE_HH
