#!/usr/bin/env bash
# Regenerate every recorded result: build, test, run all experiments.
# Outputs land in test_output.txt and bench_output.txt at the repo
# root (the files EXPERIMENTS.md numbers are transcribed from).
# Exits nonzero when the build, the tests, or ANY experiment binary
# fails - a bench crash must not silently yield a truncated
# bench_output.txt that looks like a complete run.
#
# JOBS controls the sweep parallelism inside each experiment binary
# (the --jobs flag; 0 = one worker per hardware thread). Output is
# byte-identical at any JOBS value, so it defaults to full
# parallelism.
#
# Every sweep binary also exports its per-cell metrics JSON under
# METRICS_DIR/<binary>/ (docs/OBSERVABILITY.md); a binary that exits
# zero but wrote no metrics file is treated as failed - a run whose
# measurements vanished is not a successful run.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-0}
METRICS_DIR=${METRICS_DIR:-results/metrics}

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
test "${PIPESTATUS[0]}" -eq 0

{
    for b in build/bench/*; do
        name=$(basename "$b")
        case "$b" in
            # The google-benchmark micro suite times the host and
            # takes no --jobs flag (and runs no sweep cells, so it
            # has no metrics to export).
            */bench_e11_micro) args="" ;;
            # The replay-loop throughput bench also times the host
            # and exports no per-cell metrics; it runs in the
            # dedicated perf-smoke stage below instead.
            */bench_replay_hot) continue ;;
            # Per-binary subdirectories: two binaries can run
            # identical specs, whose identical fingerprints would
            # otherwise collide on one file.
            *) args="--jobs $JOBS --metrics-dir $METRICS_DIR/$name" ;;
        esac
        # shellcheck disable=SC2086
        if ! "$b" $args; then
            echo "FAILED: $b"
        elif [ -n "$args" ] && [ "$name" != bench_e11_micro ]; then
            if ! ls "$METRICS_DIR/$name"/pabp-metrics-*.json \
                >/dev/null 2>&1; then
                echo "FAILED: $b (exited clean but wrote no metrics" \
                     "files under $METRICS_DIR/$name)"
            fi
        fi
    done
} 2>&1 | tee bench_output.txt

# --- Perf smoke (docs/PERF.md) ---------------------------------------
# Two checks on the fast replay path:
#  1. bench_replay_hot times the reference loop against the batched
#     loop on every suite workload and HARD-FAILS unless their stats
#     are bit-identical; its throughput record lands in
#     BENCH_replay.json at the repo root.
#  2. The combined-technique grid (E6) runs once per strategy into
#     separate metric directories. fastReplay is not fingerprinted,
#     so each cell writes the same filename either way - and every
#     pair of files must match BYTE FOR BYTE. Any drift is reported
#     through tools/pabp-stats and fails the run.
{
    echo "== perf smoke: replay-loop throughput =="
    # Regression gate: read the checked-in record's +both minimum
    # speedup BEFORE overwriting it, then fail if the fresh run comes
    # in more than 10% below it. Older records predate the per-config
    # key, so fall back to the all-config minimum; with no record at
    # all the fresh run just establishes the baseline.
    json_metric() {
        # Escape only dots: in sed BRE a backslashed '+' would turn
        # into the GNU one-or-more operator, not a literal.
        sed -n "s/.*\"$(printf '%s' "$2" | sed 's/\./\\./g')\": \([0-9.eE+-]*\),*/\1/p" "$1" 2>/dev/null | head -1
    }
    baseline_both=$(json_metric BENCH_replay.json replay.min_speedup.both)
    if [ -z "$baseline_both" ]; then
        baseline_both=$(json_metric BENCH_replay.json replay.min_speedup)
    fi
    # The predictor matrix covers the devirtualised specialisations
    # worth gating: gshare (the classic path) and tage (folded
    # histories make its batched loop the easiest to regress). The
    # aggregate replay.min_speedup.both spans every predictor x
    # workload cell, so tage is gated by the same threshold.
    build/bench/bench_replay_hot --steps 500000 \
        --predictor gshare,tage --out BENCH_replay.json
    new_both=$(json_metric BENCH_replay.json replay.min_speedup.both)
    if [ -n "$baseline_both" ] && [ -n "$new_both" ]; then
        if awk -v n="$new_both" -v b="$baseline_both" \
            'BEGIN { exit !(n < 0.9 * b) }'; then
            echo "FAILED: perf smoke: +both min speedup $new_both" \
                 "regressed >10% below the checked-in baseline" \
                 "$baseline_both"
        else
            echo "perf smoke: +both min speedup $new_both" \
                 "(checked-in baseline $baseline_both)"
        fi
    fi

    echo "== perf smoke: fast-vs-reference metric bytes (E6) =="
    fast_dir=$METRICS_DIR/perf_smoke_fast
    ref_dir=$METRICS_DIR/perf_smoke_ref
    rm -rf "$fast_dir" "$ref_dir"
    build/bench/bench_e6_combined --steps 200000 --jobs "$JOBS" \
        --metrics-dir "$fast_dir" > /dev/null
    build/bench/bench_e6_combined --steps 200000 --jobs "$JOBS" \
        --no-fast-replay --metrics-dir "$ref_dir" > /dev/null
    pairs=0
    for fast_file in "$fast_dir"/pabp-metrics-*.json; do
        ref_file=$ref_dir/$(basename "$fast_file")
        if [ ! -f "$ref_file" ]; then
            echo "FAILED: perf smoke: $(basename "$fast_file") has" \
                 "no reference twin (fingerprint drift between" \
                 "replay strategies)"
            continue
        fi
        pairs=$((pairs + 1))
        if ! cmp -s "$fast_file" "$ref_file"; then
            echo "FAILED: perf smoke: fast and reference metrics" \
                 "differ: $(basename "$fast_file")"
            build/tools/pabp-stats "$fast_file" "$ref_file" || true
        fi
    done
    if [ "$pairs" -eq 0 ]; then
        echo "FAILED: perf smoke: no metric file pairs compared"
    else
        echo "perf smoke: $pairs metric file pair(s) byte-identical"
    fi

    echo "== perf smoke: multi-context fast-vs-reference bytes (E21) =="
    # Same contract as the E6 check, but over the interference grid:
    # every multi-context cell (interleaved contexts, history
    # export/import swaps, shared BTB/RAS) must produce byte-identical
    # metrics whether the batched or the reference replay loop drives
    # it. A reduced budget keeps this a smoke, not a rerun of E21.
    itf_fast_dir=$METRICS_DIR/perf_smoke_itf_fast
    itf_ref_dir=$METRICS_DIR/perf_smoke_itf_ref
    rm -rf "$itf_fast_dir" "$itf_ref_dir"
    build/bench/bench_e21_interference --steps 100000 --jobs "$JOBS" \
        --out "" --metrics-dir "$itf_fast_dir" > /dev/null
    build/bench/bench_e21_interference --steps 100000 --jobs "$JOBS" \
        --no-fast-replay --out "" --metrics-dir "$itf_ref_dir" > /dev/null
    itf_pairs=0
    for fast_file in "$itf_fast_dir"/pabp-metrics-*.json; do
        ref_file=$itf_ref_dir/$(basename "$fast_file")
        if [ ! -f "$ref_file" ]; then
            echo "FAILED: perf smoke (E21): $(basename "$fast_file")" \
                 "has no reference twin (fingerprint drift between" \
                 "replay strategies)"
            continue
        fi
        itf_pairs=$((itf_pairs + 1))
        if ! cmp -s "$fast_file" "$ref_file"; then
            echo "FAILED: perf smoke (E21): fast and reference" \
                 "metrics differ: $(basename "$fast_file")"
            build/tools/pabp-stats "$fast_file" "$ref_file" || true
        fi
    done
    if [ "$itf_pairs" -eq 0 ]; then
        echo "FAILED: perf smoke (E21): no metric file pairs compared"
    else
        echo "perf smoke (E21): $itf_pairs metric file pair(s)" \
             "byte-identical"
    fi
} 2>&1 | tee -a bench_output.txt

# --- Metrics packing (docs/OBSERVABILITY.md) -------------------------
# Consolidate each binary's loose per-cell metrics files into one
# journal per binary (<METRICS_DIR>/<binary>.pabpj) so a full run
# leaves a handful of queryable artifacts instead of hundreds of JSON
# files. The perf-smoke directories stay loose: their job is the
# byte-compare above, not archival.
{
    echo "== metrics packing =="
    packed=0
    for dir in "$METRICS_DIR"/*/; do
        name=$(basename "$dir")
        case "$name" in
            perf_smoke_*) continue ;;
        esac
        if ! ls "$dir"/pabp-metrics-*.json >/dev/null 2>&1; then
            continue
        fi
        if ! build/tools/pabp-stats --pack "$dir" \
            "$METRICS_DIR/$name.pabpj" > /dev/null; then
            echo "FAILED: pabp-stats --pack $dir"
        else
            packed=$((packed + 1))
        fi
    done
    echo "metrics packing: $packed journal(s) under $METRICS_DIR"
} 2>&1 | tee -a bench_output.txt

# --- Crash-safety smoke (docs/ROBUSTNESS.md) -------------------------
# The journal convergence guarantee, end to end against a real SIGKILL:
# run a small campaign cleanly, run the same campaign again but kill -9
# the service at a seeded-random moment, re-invoke it to completion,
# and require the two journals to match BYTE FOR BYTE. CRASH_SEED pins
# the kill timing for reproducibility; vary it to probe new interleavings.
CRASH_SEED=${CRASH_SEED:-7}
{
    echo "== crash safety: SIGKILL + resume convergence (seed $CRASH_SEED) =="
    crash_dir=results/crash-smoke
    rm -rf "$crash_dir"
    mkdir -p "$crash_dir"
    # 40 cells x 500k insts: long enough (~0.3s) that a kill inside
    # the delay window below usually lands mid-campaign.
    sweepd_args=(--configs base,sfpf,pgu,both --steps 500000
                 --jobs 2 --batch-cells 1)
    build/tools/pabp-sweepd "${sweepd_args[@]}" \
        --journal "$crash_dir/clean.pabpj" > /dev/null

    RANDOM=$CRASH_SEED
    delay=$((RANDOM % 300))
    build/tools/pabp-sweepd "${sweepd_args[@]}" \
        --journal "$crash_dir/killed.pabpj" > /dev/null &
    victim=$!
    sleep "0.$(printf '%03d' "$delay")"
    kill -9 "$victim" 2>/dev/null || true
    wait "$victim" 2>/dev/null || true

    if ! build/tools/pabp-sweepd "${sweepd_args[@]}" \
        --journal "$crash_dir/killed.pabpj"; then
        echo "FAILED: crash safety: resumed pabp-sweepd did not drain"
    elif ! cmp -s "$crash_dir/clean.pabpj" "$crash_dir/killed.pabpj"; then
        echo "FAILED: crash safety: killed+resumed journal differs" \
             "from the clean run's"
        build/tools/pabp-stats "$crash_dir/clean.pabpj" \
            "$crash_dir/killed.pabpj" || true
    else
        echo "crash safety: journals byte-identical after SIGKILL at" \
             "${delay}ms + resume"
    fi
} 2>&1 | tee -a bench_output.txt

# --- Fuzz stage (docs/FUZZING.md) ------------------------------------
# Deterministic differential testing: replay the committed corpus,
# prove the harness still catches the re-introduced PR-4 clamp bug,
# and run a bounded fixed-seed campaign. Every knob is pinned, so this
# stage is byte-reproducible; any divergence is minimised to a
# reproducer in FUZZ_EMIT_DIR and fails the run.
FUZZ_RUNS=${FUZZ_RUNS:-50}
FUZZ_SEED=${FUZZ_SEED:-1}
FUZZ_EMIT_DIR=${FUZZ_EMIT_DIR:-results/fuzz-failures}
{
    echo "== fuzz: corpus replay =="
    if ! build/tools/pabp-fuzz --replay-dir tests/corpus \
        --scratch-dir build; then
        echo "FAILED: pabp-fuzz --replay-dir tests/corpus"
    fi
    echo "== fuzz: harness self-check (injected clamp bug) =="
    if ! build/tools/pabp-fuzz --check-harness --scratch-dir build; then
        echo "FAILED: pabp-fuzz --check-harness"
    fi
    echo "== fuzz: campaign seeds [$FUZZ_SEED, $((FUZZ_SEED + FUZZ_RUNS))) =="
    mkdir -p "$FUZZ_EMIT_DIR"
    if ! build/tools/pabp-fuzz --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" \
        --emit-dir "$FUZZ_EMIT_DIR" --scratch-dir build; then
        echo "FAILED: pabp-fuzz campaign (reproducers in $FUZZ_EMIT_DIR)"
    fi
    # Adversarial mining smoke (docs/FUZZING.md): hill-climb the
    # generator knobs under the low-entropy-gap scorer with pinned
    # seeds and emit the winners as replayable .pabp workloads. Exit
    # 3 (scorer infrastructure failure) and exit 1 (oracle divergence
    # on a mined case) both fail the run; the emitted cases feed
    # bench_e22's dominance check.
    MINE_DIR=${MINE_DIR:-results/mined-workloads}
    echo "== fuzz: adversarial mining (seeds 5..6) =="
    mkdir -p "$MINE_DIR"
    if ! build/tools/pabp-fuzz --mine low-entropy-gap --runs 2 \
        --seed 5 --mine-steps 6 --emit-dir "$MINE_DIR" \
        --scratch-dir build; then
        echo "FAILED: pabp-fuzz --mine low-entropy-gap"
    fi
} 2>&1 | tee -a bench_output.txt

# The loops ran in the pipelines' subshells, so their verdicts must
# be recovered from the transcript.
if grep -q '^FAILED: ' bench_output.txt; then
    echo "error: one or more experiment binaries failed" >&2
    exit 1
fi
