#!/usr/bin/env bash
# Regenerate every recorded result: build, test, run all experiments.
# Outputs land in test_output.txt and bench_output.txt at the repo
# root (the files EXPERIMENTS.md numbers are transcribed from).
# Exits nonzero when the build, the tests, or ANY experiment binary
# fails - a bench crash must not silently yield a truncated
# bench_output.txt that looks like a complete run.
#
# JOBS controls the sweep parallelism inside each experiment binary
# (the --jobs flag; 0 = one worker per hardware thread). Output is
# byte-identical at any JOBS value, so it defaults to full
# parallelism.
#
# Every sweep binary also exports its per-cell metrics JSON under
# METRICS_DIR/<binary>/ (docs/OBSERVABILITY.md); a binary that exits
# zero but wrote no metrics file is treated as failed - a run whose
# measurements vanished is not a successful run.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-0}
METRICS_DIR=${METRICS_DIR:-results/metrics}

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
test "${PIPESTATUS[0]}" -eq 0

{
    for b in build/bench/*; do
        name=$(basename "$b")
        case "$b" in
            # The google-benchmark micro suite times the host and
            # takes no --jobs flag (and runs no sweep cells, so it
            # has no metrics to export).
            */bench_e11_micro) args="" ;;
            # Per-binary subdirectories: two binaries can run
            # identical specs, whose identical fingerprints would
            # otherwise collide on one file.
            *) args="--jobs $JOBS --metrics-dir $METRICS_DIR/$name" ;;
        esac
        # shellcheck disable=SC2086
        if ! "$b" $args; then
            echo "FAILED: $b"
        elif [ -n "$args" ] && [ "$name" != bench_e11_micro ]; then
            if ! ls "$METRICS_DIR/$name"/pabp-metrics-*.json \
                >/dev/null 2>&1; then
                echo "FAILED: $b (exited clean but wrote no metrics" \
                     "files under $METRICS_DIR/$name)"
            fi
        fi
    done
} 2>&1 | tee bench_output.txt
# The loop ran in the pipeline's subshell, so its verdict must be
# recovered from the transcript.
if grep -q '^FAILED: ' bench_output.txt; then
    echo "error: one or more experiment binaries failed" >&2
    exit 1
fi
