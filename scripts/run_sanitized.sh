#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the PABP_SANITIZE CMake option), in a
# separate build tree so the regular build stays untouched. The
# fault-injection tests are the main beneficiary: they walk every
# degraded path in the trace/checkpoint readers, where an
# out-of-bounds read on corrupt input would otherwise hide.
#
# A second stage rebuilds under ThreadSanitizer (PABP_TSAN) and runs
# the concurrency-bearing tests - the thread pool and the parallel
# sweep runner, including the jobs-1-vs-N determinism suite and the
# stats/metrics-export tests (per-cell metric files are written from
# worker threads, so the export path must be race-clean too) - so a
# data race in the sweep layer fails CI instead of surfacing as a
# once-in-a-thousand-runs wrong table. Set PABP_SKIP_TSAN=1 to run
# only the ASan/UBSan stage.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -G Ninja -DPABP_SANITIZE=ON
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Fuzz stage under ASan/UBSan (docs/FUZZING.md): the trace- and
# journal-corruption oracles feed bit-flipped and truncated PABPTRC2 /
# PABPJRN1 bytes to both the strict and the salvage readers - exactly
# the inputs where an out-of-bounds read would hide without
# sanitizers. Fixed seeds keep the stage deterministic; any divergence
# or sanitizer report fails.
FUZZ_RUNS=${FUZZ_RUNS:-25}
FUZZ_SEED=${FUZZ_SEED:-1}
"$BUILD_DIR"/tools/pabp-fuzz --replay-dir tests/corpus \
    --scratch-dir "$BUILD_DIR"
"$BUILD_DIR"/tools/pabp-fuzz --check-harness --scratch-dir "$BUILD_DIR"
"$BUILD_DIR"/tools/pabp-fuzz --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" \
    --scratch-dir "$BUILD_DIR"

# SIMD kernels under ASan/UBSan at BOTH dispatch tiers (util/simd.hh):
# the AVX2 scan kernels read the class lane in 32-byte vectors with
# scalar tail handling, and the perceptron kernels stride int16 rows -
# exactly the code where an off-by-one would read past a buffer
# without tripping anything in a normal run. PABP_SIMD forces the
# tier; on a host without AVX2 the avx2 pass falls back to scalar and
# is a harmless repeat. The fast-replay suite rides along so the whole
# batched engine (collectStops consumers, schedule-cache capture and
# hit paths) runs sanitized at each tier too. 'Tage|InjectContract'
# pins the TAGE folded-history machinery (circular raw-history buffer
# indexing, multi-bit injection, u-reset sweeps) and the
# bulk-vs-sequential inject contract for every predictor kind - the
# paths where a fold-width or wrap off-by-one would read garbage
# without ever failing a plain assertion. 'MultiCtx' interleaves N
# decoded traces through one predictor with per-slice history
# export/import swaps and shared BTB/RAS borrowing, and 'Btb' covers
# the target structures themselves - new pointer-juggling paths that
# deserve both tiers sanitized.
for tier in scalar avx2; do
    PABP_SIMD=$tier ctest --test-dir "$BUILD_DIR" --output-on-failure \
        -j "$(nproc)" \
        -R 'Simd|FastReplay|DecodedTrace|Tage|InjectContract|MultiCtx|Btb|ContextSchedule|Predictability|Mining'
done

if [ "${PABP_SKIP_TSAN:-0}" != "1" ]; then
    TSAN_DIR=${TSAN_DIR:-build-tsan}
    cmake -B "$TSAN_DIR" -G Ninja -DPABP_TSAN=ON
    cmake --build "$TSAN_DIR" --target pabp_tests
    # 'Sweep' also picks up the SweepService campaign tests (journal
    # commits from the coordinator while workers run); 'Journal'
    # covers the journal unit tests themselves. 'FastReplay' adds the
    # replay-schedule cache, whose find/insert runs under a mutex
    # against concurrent sweep workers sharing one decoded trace - the
    # sweep tests drive that concurrently, the FastReplay tests pin
    # the single-threaded semantics under the same build. 'MultiCtx'
    # rides along because multi-context cells run inside sweep worker
    # threads and share the per-context decoded traces through the
    # same cache.
    # 'Metrics' also catches the characterized-cell byte-identity
    # suite: predictability reports are computed once per program in
    # a promise/shared_future cache that sweep workers race on.
    ctest --test-dir "$TSAN_DIR" --output-on-failure \
        -R 'ThreadPool|Sweep|Stats|Metrics|Journal|FastReplay|MultiCtx|Predictability'
fi
