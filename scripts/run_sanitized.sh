#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the PABP_SANITIZE CMake option), in a
# separate build tree so the regular build stays untouched. The
# fault-injection tests are the main beneficiary: they walk every
# degraded path in the trace/checkpoint readers, where an
# out-of-bounds read on corrupt input would otherwise hide.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -G Ninja -DPABP_SANITIZE=ON
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
